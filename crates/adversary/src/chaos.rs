//! Chaos campaigns: recurring [`FaultSchedule`] waves driven through the
//! engine's self-healing pool, bridged into `smst-telemetry`.
//!
//! The campaign engine in [`campaign`](crate::campaign) *searches* for bad
//! schedules; this module *endures* them. A [`ChaosCase`] is one fully
//! replayable verify-forever run — graph family × schedule × execution
//! envelope (threads, [`RecoveryPolicy`], optional one-shot
//! [`InjectionSpec`]) — executed by the engine's
//! [`run_chaos_scenario`] on the [`AlarmedFlood`] workload (the one demo
//! program where every wave is both *detected* — the garbage floods to a
//! monitor node — and *digested* — out-of-range values decay
//! geometrically and the flood re-converges). Results bridge two ways:
//!
//! * [`ChaosCase::chaos_run`] converts an engine [`ChaosReport`] into a
//!   telemetry [`ChaosRun`] for the `BENCH_chaos.json` artifact
//!   ([`smst_telemetry::ChaosArtifact`]);
//! * [`record_chaos_metrics`] / [`record_pool_metrics`] feed the
//!   [`Metrics`] registry under the `names::CHAOS_*` / `names::POOL_*`
//!   keys, including the worker pool's self-healing counters
//!   ([`PoolStats`]).
//!
//! [`chaos_campaign_json`] serializes a whole campaign (cases plus pool
//! counters) as `CAMPAIGN_chaos.json`, next to the search campaigns'
//! artifacts and with the same writer discipline.

use smst_bench::harness::{bench_dir, json_string};
use smst_engine::programs::AlarmedFlood;
use smst_engine::{
    run_chaos_scenario, ChaosReport, EngineError, GraphFamily, InjectionSpec, PoolStats,
    RecoveryPolicy, ScenarioSpec,
};
use smst_sim::FaultSchedule;
use smst_telemetry::{names, ChaosRun, Metrics};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// One replayable chaos campaign case: a graph family under a recurring
/// fault schedule, executed on a chosen engine envelope.
#[derive(Debug, Clone)]
pub struct ChaosCase {
    /// Case label (artifact key).
    pub name: String,
    /// The graph family under chaos.
    pub family: GraphFamily,
    /// Graph seed.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
    /// The recurring fault schedule.
    pub schedule: FaultSchedule,
    /// Step budget of the campaign.
    pub steps: usize,
    /// Retry/backoff/watchdog policy for panicked or hung workers.
    pub recovery: RecoveryPolicy,
    /// Optional one-shot worker-level chaos (panic or stall injection).
    pub injection: Option<InjectionSpec>,
}

impl ChaosCase {
    /// A case with defaults: seed 1, one thread, no recovery, no
    /// injection.
    pub fn new(name: &str, family: GraphFamily, schedule: FaultSchedule, steps: usize) -> Self {
        ChaosCase {
            name: name.to_string(),
            family,
            seed: 1,
            threads: 1,
            schedule,
            steps,
            recovery: RecoveryPolicy::none(),
            injection: None,
        }
    }

    /// Sets the graph seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the worker-thread count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the recovery policy.
    pub fn recovery(mut self, policy: RecoveryPolicy) -> Self {
        self.recovery = policy;
        self
    }

    /// Arms a one-shot worker-level injection.
    pub fn inject(mut self, injection: InjectionSpec) -> Self {
        self.injection = Some(injection);
        self
    }

    /// The workload every chaos case runs: an [`AlarmedFlood`] converging
    /// to the family's largest identity, with node 0 as the monitor —
    /// detection latency is the propagation distance from each wave to
    /// node 0, quiescence the garbage-decay plus re-convergence time.
    pub fn workload(&self) -> AlarmedFlood {
        AlarmedFlood::new(0, self.family.node_count() as u64 - 1)
    }

    fn scenario(&self) -> ScenarioSpec {
        let mut spec = ScenarioSpec::new(self.family.clone())
            .seed(self.seed)
            .threads(self.threads)
            .recovery(self.recovery);
        if let Some(injection) = self.injection {
            spec = spec.inject(injection);
        }
        spec
    }

    /// Runs the campaign: every wave corrupts its registers with
    /// [`AlarmedFlood::BOGUS`].
    pub fn run(&self) -> Result<ChaosCaseOutcome, EngineError> {
        let outcome = run_chaos_scenario(
            &self.scenario(),
            &self.workload(),
            &self.schedule,
            self.steps,
            |_v, s| *s = AlarmedFlood::BOGUS,
        )?;
        Ok(ChaosCaseOutcome {
            states: outcome.network.states().to_vec(),
            report: outcome.report,
        })
    }

    /// Bridges an engine [`ChaosReport`] into the telemetry artifact
    /// record for this case.
    pub fn chaos_run(&self, report: &ChaosReport) -> ChaosRun {
        ChaosRun {
            label: self.name.clone(),
            run: format!(
                "{:?} seed={} threads={} recovery={:?}",
                self.family, self.seed, self.threads, self.recovery
            ),
            schedule: self.schedule.describe(),
            steps_run: report.steps_run,
            injected_faults: report.injected_faults,
            waves: report.waves.clone(),
        }
    }
}

/// What one chaos case produced: the campaign report plus the final
/// registers (for clean-vs-injected identity checks).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosCaseOutcome {
    /// Per-wave accounting and run totals.
    pub report: ChaosReport,
    /// Final registers, by original node id.
    pub states: Vec<u64>,
}

/// Records one campaign report into `metrics` under the `names::CHAOS_*`
/// keys: wave/fault counters plus per-wave detection-latency and
/// rounds-to-quiescence histograms (censored waves are skipped, never
/// recorded as zero).
pub fn record_chaos_metrics(metrics: &Metrics, report: &ChaosReport) {
    metrics
        .counter(names::CHAOS_WAVES)
        .add(report.waves.len() as u64);
    metrics
        .counter(names::CHAOS_FAULTS)
        .add(report.injected_faults as u64);
    let detection = metrics.histogram(names::CHAOS_DETECTION_STEPS);
    let quiescence = metrics.histogram(names::CHAOS_QUIESCENCE_STEPS);
    for w in &report.waves {
        if let Some(d) = w.detection_latency {
            detection.record(d as u64);
        }
        if let Some(q) = w.quiescence {
            quiescence.record(q as u64);
        }
    }
}

/// Copies the worker pool's self-healing totals ([`PoolStats`] is
/// process-cumulative) into `metrics` under the `names::POOL_*` keys.
/// Call once per registry, at the end of a campaign — counters
/// accumulate, so repeated bridging would double-count.
pub fn record_pool_metrics(metrics: &Metrics, stats: &PoolStats) {
    metrics
        .counter(names::POOL_WORKER_PANICS)
        .add(stats.panics());
    metrics
        .counter(names::POOL_WORKER_RESPAWNS)
        .add(stats.respawns());
    metrics
        .counter(names::POOL_BARRIER_TIMEOUTS)
        .add(stats.barrier_timeouts());
}

/// One case line inside [`chaos_campaign_json`].
#[derive(Debug, Clone)]
pub struct ChaosCaseRecord {
    /// Case label.
    pub case: String,
    /// Schedule grammar (`FaultSchedule::describe()`).
    pub schedule: String,
    /// Worker threads the case ran on.
    pub threads: usize,
    /// The case's campaign report.
    pub report: ChaosReport,
    /// `Some(true)` when an injected twin of this case reproduced the
    /// clean run bit-for-bit (`None` when no twin was run).
    pub recovery_invisible: Option<bool>,
}

impl ChaosCaseRecord {
    /// A record from a case and what it reported.
    pub fn new(case: &ChaosCase, report: ChaosReport) -> Self {
        ChaosCaseRecord {
            case: case.name.clone(),
            schedule: case.schedule.describe(),
            threads: case.threads,
            report,
            recovery_invisible: None,
        }
    }

    /// Marks whether the injected twin reproduced the clean run.
    pub fn recovery_invisible(mut self, invisible: bool) -> Self {
        self.recovery_invisible = Some(invisible);
        self
    }
}

fn json_opt_f64(v: Option<f64>) -> String {
    v.map_or_else(|| "null".to_string(), |x| format!("{x}"))
}

fn json_opt_bool(v: Option<bool>) -> String {
    v.map_or_else(|| "null".to_string(), |x| x.to_string())
}

/// Serializes a chaos campaign — case records plus the pool's
/// self-healing counters — as one JSON object (the `CAMPAIGN_chaos.json`
/// body).
pub fn chaos_campaign_json(name: &str, records: &[ChaosCaseRecord], pool: &PoolStats) -> String {
    let cases: Vec<String> = records
        .iter()
        .map(|r| {
            format!(
                "{{\"case\":{},\"schedule\":{},\"threads\":{},\
                 \"steps_run\":{},\"waves\":{},\"injected_faults\":{},\
                 \"detected_waves\":{},\"quiesced_waves\":{},\
                 \"mean_detection_latency\":{},\"mean_quiescence\":{},\
                 \"recovery_invisible\":{}}}",
                json_string(&r.case),
                json_string(&r.schedule),
                r.threads,
                r.report.steps_run,
                r.report.waves.len(),
                r.report.injected_faults,
                r.report.detected_waves(),
                r.report.quiesced_waves(),
                json_opt_f64(r.report.mean_detection_latency()),
                json_opt_f64(r.report.mean_quiescence()),
                json_opt_bool(r.recovery_invisible),
            )
        })
        .collect();
    format!(
        "{{\"schema\":\"smst-campaign-v1\",\"campaign\":{},\"cases\":[{}],\
         \"pool\":{{\"worker_panics\":{},\"worker_respawns\":{},\
         \"barrier_timeouts\":{}}}}}\n",
        json_string(name),
        cases.join(","),
        pool.panics(),
        pool.respawns(),
        pool.barrier_timeouts(),
    )
}

/// Writes `CAMPAIGN_<name>.json` into [`bench_dir`] and returns its path.
///
/// # Panics
///
/// Panics on I/O errors — a campaign that silently loses its results is
/// worse than one that fails.
pub fn write_chaos_campaign_artifact(
    name: &str,
    records: &[ChaosCaseRecord],
    pool: &PoolStats,
) -> PathBuf {
    write_chaos_campaign_artifact_in(&bench_dir(), name, records, pool)
}

/// [`write_chaos_campaign_artifact`] into an explicit directory.
pub fn write_chaos_campaign_artifact_in(
    dir: &Path,
    name: &str,
    records: &[ChaosCaseRecord],
    pool: &PoolStats,
) -> PathBuf {
    let path = dir.join(format!("CAMPAIGN_{name}.json"));
    let mut file = std::fs::File::create(&path).expect("creating the chaos campaign artifact");
    file.write_all(chaos_campaign_json(name, records, pool).as_bytes())
        .expect("writing the chaos campaign artifact");
    println!("  chaos campaign -> {}", path.display());
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use smst_engine::PoolHandle;

    fn small_case(name: &str, threads: usize) -> ChaosCase {
        // period 24 leaves each wave room for the ~15-step garbage decay
        // plus the expander's diameter before the next wave fires
        ChaosCase::new(
            name,
            GraphFamily::Expander { n: 48, degree: 4 },
            FaultSchedule::periodic(24, 5, 23).offset(3),
            75,
        )
        .seed(6)
        .threads(threads)
    }

    #[test]
    fn a_case_detects_and_digests_every_wave() {
        let outcome = small_case("unit_periodic", 2).run().expect("valid case");
        assert_eq!(outcome.report.waves.len(), 3, "waves at 3, 27, 51");
        assert_eq!(outcome.report.detected_waves(), 3);
        assert_eq!(outcome.report.quiesced_waves(), 3);
        assert!(
            outcome.states.iter().all(|&s| s == 47),
            "back at the ceiling"
        );
    }

    #[test]
    fn cases_replay_across_thread_counts() {
        let a = small_case("a", 1).run().expect("valid case");
        let b = small_case("b", 4).run().expect("valid case");
        assert_eq!(a.report, b.report);
        assert_eq!(a.states, b.states);
    }

    #[test]
    fn injected_panic_with_recovery_is_invisible() {
        let clean = small_case("clean", 2).run().expect("valid case");
        let chaotic = small_case("chaotic", 2)
            .recovery(RecoveryPolicy::retries(2))
            .inject(InjectionSpec::panic_at(4, 0))
            .run()
            .expect("the injected panic is retried away");
        assert_eq!(chaotic, clean);
    }

    #[test]
    fn metrics_bridge_counts_waves_and_latencies() {
        let outcome = small_case("metrics", 2).run().expect("valid case");
        let metrics = Metrics::new();
        record_chaos_metrics(&metrics, &outcome.report);
        record_pool_metrics(&metrics, PoolHandle::for_threads(2).pool().stats());
        let snapshot = metrics.snapshot();
        assert_eq!(snapshot.counters[names::CHAOS_WAVES], 3);
        assert_eq!(snapshot.counters[names::CHAOS_FAULTS], 15);
        assert_eq!(snapshot.histograms[names::CHAOS_DETECTION_STEPS].count, 3);
        assert_eq!(snapshot.histograms[names::CHAOS_QUIESCENCE_STEPS].count, 3);
        // the pool counters exist (their values are process-cumulative,
        // shared with every other test in the binary)
        assert!(snapshot.counters.contains_key(names::POOL_WORKER_PANICS));
        assert!(snapshot.counters.contains_key(names::POOL_WORKER_RESPAWNS));
        assert!(snapshot.counters.contains_key(names::POOL_BARRIER_TIMEOUTS));
    }

    #[test]
    fn campaign_json_is_balanced_and_complete() {
        let case = small_case("json_case", 2);
        let outcome = case.run().expect("valid case");
        let records = vec![ChaosCaseRecord::new(&case, outcome.report).recovery_invisible(true)];
        let json = chaos_campaign_json("chaos_unit", &records, &PoolStats::default());
        assert!(json.starts_with("{\"schema\":\"smst-campaign-v1\",\"campaign\":\"chaos_unit\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"case\":\"json_case\""));
        assert!(json.contains("\"schedule\":\"periodic(period=24,offset=3,f=5,seed=23)\""));
        assert!(json.contains("\"recovery_invisible\":true"));
        assert!(json.contains("\"pool\":{\"worker_panics\":0"));
    }

    #[test]
    fn campaign_artifact_round_trips_through_a_directory() {
        let dir = std::env::temp_dir().join("smst_adversary_chaos_test");
        std::fs::create_dir_all(&dir).unwrap();
        let case = small_case("roundtrip", 1);
        let outcome = case.run().expect("valid case");
        let records = vec![ChaosCaseRecord::new(&case, outcome.report)];
        let path = write_chaos_campaign_artifact_in(
            &dir,
            "chaos_roundtrip",
            &records,
            &PoolStats::default(),
        );
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"campaign\":\"chaos_roundtrip\""));
        assert_eq!(
            path.file_name().unwrap().to_string_lossy(),
            "CAMPAIGN_chaos_roundtrip.json"
        );
        std::fs::remove_file(path).ok();
    }
}
