//! # smst-adversary
//!
//! The adversarial schedule & fault **campaign engine**: searches
//! `GraphFamily × FaultKind × FaultPlan × BatchDaemon` space for
//! executions where detection or stabilization is as late as the fairness
//! bound allows, and distils every find into a minimal, replayable
//! counterexample.
//!
//! The paper states its guarantees against a *distributed* daemon, but the
//! sequential simulator's central [`Daemon`](smst_sim::Daemon) can only
//! activate one node at a time — the distributed-daemon literature (KMW-style
//! lower-bound constructions) draws its worst cases from schedules the
//! central daemon cannot express. This crate supplies the missing pieces:
//!
//! * [`daemons`] — fairness-preserving adversarial **batch** daemons
//!   ([`StallDaemon`], [`StarveDaemon`], [`CutFocusDaemon`]): batches
//!   chosen by node *identity* (shard interiors, boundaries, cut
//!   endpoints), pinning cross-region information flow to one hop per time
//!   unit;
//! * [`trial`] — [`TrialSpec`]: one execution fully described by a
//!   one-line replayable id ([`TrialSpec::id`] / [`TrialSpec::from_id`]),
//!   run through [`ScenarioSpec`](smst_engine::ScenarioSpec) on one of
//!   three workloads (monitor flood, healing flood, the paper's verifier);
//! * [`campaign`] — [`run_campaign`]: seeded random + guided search,
//!   trials fanned out on the engine's persistent worker pool, every trial
//!   scored against its round-robin baseline (**regret**);
//! * [`shrink`] — delta-debugging [`shrink`](shrink::shrink): fewer
//!   faults, smaller graph, shorter schedule prefix, tamer daemon — down
//!   to a 1-minimal counterexample;
//! * [`artifact`] — `CAMPAIGN_<name>.json` written next to the bench
//!   JSONs (same escaping, same `$SMST_BENCH_DIR`), uploaded by CI's
//!   `campaign-smoke` job;
//! * [`chaos`] — verify-forever chaos campaigns: recurring
//!   [`FaultSchedule`](smst_sim::FaultSchedule) waves endured on the
//!   engine's self-healing pool, bridged into `smst-telemetry`
//!   (`BENCH_chaos.json`, the `chaos.*`/`pool.*` metrics) and summarized
//!   as `CAMPAIGN_chaos.json` by CI's `chaos-smoke` job.
//!
//! Everything is a pure function of explicit seeds: campaigns, trials and
//! shrinks all replay bit-for-bit.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod campaign;
pub mod chaos;
pub mod daemons;
pub mod shrink;
pub mod trial;

pub use artifact::{campaign_json, write_campaign_artifact};
pub use campaign::{run_campaign, CampaignReport, CampaignSpec, TrialRecord};
pub use chaos::{
    chaos_campaign_json, record_chaos_metrics, record_pool_metrics, write_chaos_campaign_artifact,
    ChaosCase, ChaosCaseOutcome, ChaosCaseRecord,
};
pub use daemons::{CutFocusDaemon, StallDaemon, StarveDaemon};
pub use shrink::{shrink as shrink_trial, ShrinkResult};
pub use trial::{
    beats_round_robin, beats_round_robin_memo, run_trial, run_trial_observed, DaemonSpec, Score,
    TrialOutcome, TrialSpec, Workload,
};
