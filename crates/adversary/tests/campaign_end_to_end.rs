//! The acceptance demo: a seeded campaign finds an adversarial **batch**
//! daemon + fault plan whose detection is strictly later than
//! `Daemon::RoundRobin` on the same graph and faults, and the shrinker
//! reduces the find to a 1-minimal trial that replays identically from its
//! `TrialId`.

use smst_adversary::{
    beats_round_robin, beats_round_robin_memo, run_campaign, run_trial, shrink_trial, CampaignSpec,
    TrialSpec, Workload,
};
use smst_engine::GraphFamily;

fn demo_campaign() -> CampaignSpec {
    let mut spec = CampaignSpec::new("e2e_demo", Workload::Monitor);
    spec.families = vec![
        GraphFamily::Path { n: 32 },
        GraphFamily::Caterpillar { spine: 10, legs: 2 },
    ];
    spec.graph_seeds = vec![1, 2];
    spec.random_trials = 20;
    spec.guided_rounds = 2;
    spec.keep_top = 3;
    spec.budget = 160;
    spec.seed = 7;
    spec.threads = 2;
    spec
}

#[test]
fn campaign_finds_and_shrinks_an_adversarial_counterexample() {
    let report = run_campaign(&demo_campaign());

    // 1. the campaign found an adversarial *batch* daemon (one the central
    //    Daemon enum cannot express) with strictly later detection than
    //    round-robin on the same graph + fault plan
    let find = report
        .records
        .iter()
        .find(|r| {
            r.spec.daemon.is_adversarial_batch() && r.regret > 0 && !r.outcome.score.is_missed()
        })
        .expect("the campaign must find an adversarial batch counterexample");
    assert!(
        find.outcome.score > find.baseline.score,
        "detection must be strictly later than round-robin"
    );
    // the baseline really is the same trial under round-robin
    let baseline_spec = find.spec.round_robin_baseline();
    assert_eq!(baseline_spec.family, find.spec.family);
    assert_eq!(baseline_spec.fault_seed, find.spec.fault_seed);
    assert_eq!(run_trial(&baseline_spec), find.baseline);

    // 2. the shrinker minimizes the find while it stays a counterexample
    //    (beats_round_robin: a *measured* strictly-later detection —
    //    shrinking the budget below the detection time would degenerate
    //    into a missed alarm)
    let shrunk = shrink_trial(&find.spec, beats_round_robin_memo());
    assert!(
        shrunk.accepted > 0,
        "a campaign-scale find must have shrinking slack"
    );
    assert!(shrunk.spec.budget <= find.spec.budget);
    assert!(shrunk.spec.family.node_count() <= find.spec.family.node_count());
    assert!(
        beats_round_robin(&shrunk.spec),
        "shrinking must preserve the bug"
    );

    // 3. the shrunk trial replays identically from its one-line TrialId
    let id = shrunk.spec.id();
    let replayed_spec = TrialSpec::from_id(&id).expect("ids always parse");
    assert_eq!(replayed_spec, shrunk.spec);
    let a = run_trial(&replayed_spec);
    let b = run_trial(&shrunk.spec);
    assert_eq!(a, b, "replay from TrialId `{id}` diverged");
    assert!(a.detection.is_some(), "the counterexample still detects");
}

#[test]
fn campaign_reports_are_stable_across_thread_counts() {
    let sequential = {
        let mut spec = demo_campaign();
        spec.random_trials = 8;
        spec.guided_rounds = 1;
        spec.threads = 1;
        run_campaign(&spec)
    };
    let parallel = {
        let mut spec = demo_campaign();
        spec.random_trials = 8;
        spec.guided_rounds = 1;
        spec.threads = 4;
        run_campaign(&spec)
    };
    assert_eq!(sequential.records.len(), parallel.records.len());
    for (a, b) in sequential.records.iter().zip(&parallel.records) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.regret, b.regret);
    }
}

#[test]
fn verifier_workload_detects_on_the_engine() {
    // one small trial of the real workload: the paper's verifier under an
    // adversarial batch daemon, warm-up included — pinned detecting
    use smst_adversary::DaemonSpec;
    use smst_core::faults::FaultKind;
    use smst_core::MstVerificationScheme;
    let n = 8usize;
    let warmup = MstVerificationScheme::sync_budget(n);
    let spec = TrialSpec {
        workload: Workload::Verifier,
        family: GraphFamily::RandomConnected { n, m: 3 * n },
        graph_seed: 3,
        daemon: DaemonSpec::BoundaryStall {
            shards: 2,
            repeats: 0,
        },
        fault_kind: FaultKind::SpDistance,
        fault_count: 1,
        fault_seed: 3,
        inject_at: warmup,
        budget: warmup + 4 * warmup + 1,
    };
    let outcome = run_trial(&spec);
    assert!(
        outcome.detection.is_some(),
        "the verifier must detect an SP-distance fault under a stalling daemon"
    );
    // replay identity holds for the heavyweight workload too
    assert_eq!(run_trial(&TrialSpec::from_id(&spec.id()).unwrap()), outcome);
}
