//! Property tests over every `BatchDaemon` in the workspace — built-in
//! (central daemons, chunked central daemons) and adversarial (stall,
//! starve, cut-focus):
//!
//! 1. **Fairness** — every time unit activates each node at least once;
//! 2. **Determinism** — the schedule is a pure function of
//!    `(spec, n, unit_index)`: re-querying and rebuilding the daemon gives
//!    identical batches;
//! 3. **Replay** — at batch width 1 the chunked central daemons replay the
//!    sequential `AsyncRunner` register-for-register on the engine.

use smst_adversary::{CutFocusDaemon, DaemonSpec, StallDaemon, StarveDaemon};
use smst_graph::generators::{caterpillar_graph, path_graph, random_connected_graph, ring_graph};
use smst_graph::WeightedGraph;
use smst_sim::{
    AsyncRunner, BatchDaemon, ChunkedDaemon, Daemon, Network, NodeContext, NodeProgram, Verdict,
};

fn graphs() -> Vec<WeightedGraph> {
    vec![
        path_graph(17, 0),
        ring_graph(12, 1),
        caterpillar_graph(5, 2, 2),
        random_connected_graph(26, 60, 3),
    ]
}

/// Every daemon shape the workspace can schedule, instantiated for `g`.
fn roster(g: &WeightedGraph) -> Vec<Box<dyn BatchDaemon>> {
    let centrals = [
        Daemon::RoundRobin,
        Daemon::Random {
            seed: 9,
            extra_factor: 2,
        },
        Daemon::Adversarial {
            pivot: 3,
            pivot_repeats: 2,
        },
    ];
    let mut out: Vec<Box<dyn BatchDaemon>> = Vec::new();
    for central in &centrals {
        out.push(central.clone_box());
        for batch in [1usize, 4, 64] {
            out.push(Box::new(ChunkedDaemon::new(central.clone(), batch)));
        }
    }
    for shards in [2usize, 4] {
        out.push(Box::new(StallDaemon::new(g, shards, 1)));
        out.push(Box::new(StarveDaemon::new(g, shards, 2)));
    }
    out.push(Box::new(CutFocusDaemon::new(g, 5, 1)));
    out
}

#[test]
fn every_daemon_is_fair() {
    for g in graphs() {
        let n = g.node_count();
        for daemon in roster(&g) {
            for unit in 0..5 {
                let mut seen = vec![false; n];
                for batch in daemon.unit_batches(n, unit) {
                    for v in batch {
                        seen[v.index()] = true;
                    }
                }
                assert!(
                    seen.iter().all(|&s| s),
                    "{} misses a node in unit {unit} (n = {n})",
                    daemon.describe()
                );
            }
        }
    }
}

#[test]
fn every_daemon_is_deterministic_per_seed() {
    for g in graphs() {
        let n = g.node_count();
        let roster_a = roster(&g);
        let roster_b = roster(&g);
        for (a, b) in roster_a.iter().zip(&roster_b) {
            for unit in 0..4 {
                assert_eq!(
                    a.unit_batches(n, unit),
                    a.unit_batches(n, unit),
                    "{} is not pure",
                    a.describe()
                );
                assert_eq!(
                    a.unit_batches(n, unit),
                    b.unit_batches(n, unit),
                    "{} differs across rebuilds",
                    a.describe()
                );
            }
        }
    }
}

#[test]
fn for_each_batch_equals_unit_batches() {
    // the borrowed hot-path visitor and the owned inspection API must
    // describe the same schedule for every daemon shape
    for g in graphs() {
        let n = g.node_count();
        for daemon in roster(&g) {
            for unit in 0..4 {
                let mut visited: Vec<Vec<smst_graph::NodeId>> = Vec::new();
                daemon.for_each_batch(n, unit, &mut |batch| visited.push(batch.to_vec()));
                let owned: Vec<Vec<smst_graph::NodeId>> = daemon
                    .unit_batches(n, unit)
                    .into_iter()
                    .filter(|b| !b.is_empty())
                    .collect();
                assert_eq!(
                    visited,
                    owned,
                    "{} for_each_batch diverges at unit {unit}",
                    daemon.describe()
                );
            }
        }
    }
}

#[test]
fn daemon_spec_builds_are_deterministic() {
    let g = random_connected_graph(20, 45, 7);
    let specs = [
        DaemonSpec::RoundRobin { batch: 4 },
        DaemonSpec::Random {
            seed: 3,
            extra_factor: 1,
            batch: 2,
        },
        DaemonSpec::Pivot {
            pivot: 5,
            repeats: 2,
            batch: 1,
        },
        DaemonSpec::BoundaryStall {
            shards: 3,
            repeats: 1,
        },
        DaemonSpec::ShardStarve {
            shards: 3,
            repeats: 1,
        },
        DaemonSpec::CutFocus {
            source_seed: 2,
            repeats: 1,
        },
    ];
    for spec in &specs {
        let a = spec.build(&g);
        let b = spec.build(&g);
        for unit in 0..3 {
            assert_eq!(a.unit_batches(20, unit), b.unit_batches(20, unit));
        }
    }
}

struct MinId;

impl NodeProgram for MinId {
    type State = u64;
    fn init(&self, ctx: &NodeContext) -> u64 {
        ctx.id
    }
    fn step(&self, _ctx: &NodeContext, own: &u64, neighbors: &[&u64]) -> u64 {
        neighbors.iter().fold(*own, |acc, &&x| acc.min(x))
    }
    fn verdict(&self, _ctx: &NodeContext, state: &u64) -> Verdict {
        if *state == 0 {
            Verdict::Accept
        } else {
            Verdict::Working
        }
    }
}

#[test]
fn chunked_daemons_at_batch_one_replay_the_central_daemon() {
    let g = random_connected_graph(24, 55, 4);
    for central in [
        Daemon::RoundRobin,
        Daemon::Random {
            seed: 6,
            extra_factor: 2,
        },
        Daemon::Adversarial {
            pivot: 2,
            pivot_repeats: 3,
        },
    ] {
        let mut sequential =
            AsyncRunner::new(&MinId, Network::new(&MinId, g.clone()), central.clone());
        let mut engine = smst_engine::ShardedAsyncRunner::with_batch_daemon(
            &MinId,
            g.clone(),
            Box::new(ChunkedDaemon::new(central.clone(), 1)),
            3,
            smst_engine::LayoutPolicy::Identity,
        );
        for unit in 0..6 {
            assert_eq!(
                engine.states_snapshot(),
                sequential.network().states(),
                "{central:?} diverged at unit {unit}"
            );
            sequential.step_time_unit();
            engine.step_time_unit();
        }
        assert_eq!(
            engine.activations(),
            sequential.activations(),
            "{central:?}"
        );
    }
}

#[test]
fn adversarial_daemons_run_on_the_engine_and_converge() {
    // fairness in action: under every adversarial batch daemon the min-id
    // flood still converges within n time units (one hop per unit is the
    // worst fairness allows)
    let g = path_graph(14, 2);
    let n = g.node_count();
    for spec in [
        DaemonSpec::BoundaryStall {
            shards: 2,
            repeats: 1,
        },
        DaemonSpec::ShardStarve {
            shards: 3,
            repeats: 1,
        },
        DaemonSpec::CutFocus {
            source_seed: 1,
            repeats: 1,
        },
    ] {
        let mut runner = smst_engine::ShardedAsyncRunner::with_batch_daemon(
            &MinId,
            g.clone(),
            spec.build(&g),
            2,
            smst_engine::LayoutPolicy::Identity,
        );
        let t = runner
            .run_until_all_accept(2 * n)
            .unwrap_or_else(|| panic!("{spec:?} starved the flood"));
        assert!(t <= n, "{spec:?} took {t} > n = {n} units");
    }
}
