//! The chaos-postmortem acceptance path: a forced
//! [`PoolError::BarrierTimeout`] must leave a `FLIGHT_*.json` artifact
//! carrying the final ring-buffer window of rounds — the typed error says
//! *what* killed the run, the flight recorder says what the rounds before
//! it looked like.

use smst_engine::programs::AlarmedFlood;
use smst_engine::{
    EngineConfig, GraphFamily, InjectionSpec, ParallelSyncRunner, PoolError, RecoveryPolicy,
    ScenarioSpec,
};
use smst_telemetry::FlightRecorder;
use std::time::Duration;

#[test]
fn forced_barrier_timeout_dumps_a_flight_artifact() {
    let n = 48;
    let watchdog = Duration::from_millis(50);
    let graph = ScenarioSpec::new(GraphFamily::Expander { n, degree: 4 })
        .seed(7)
        .build_graph();
    let program = AlarmedFlood::new(0, n as u64 - 1);
    let config = EngineConfig::new()
        .threads(2)
        .recovery(RecoveryPolicy::retries(1).watchdog(watchdog))
        .inject(InjectionSpec::stall_at(2, 1, 400));
    let mut runner =
        ParallelSyncRunner::from_config(&program, graph, &config).expect("a valid stall envelope");
    let flight = FlightRecorder::new(16);
    runner.set_observer(Box::new(flight.clone()));

    let timeout = match runner.try_run_rounds(6) {
        Err(PoolError::BarrierTimeout { timeout }) => timeout,
        other => panic!("a hung worker must trip the watchdog, got {other:?}"),
    };
    assert_eq!(timeout, watchdog);

    // the stall fires at round 2, so the recorder saw the completed
    // rounds before the barrier hung
    assert!(!flight.is_empty(), "the ring saw the pre-failure rounds");
    assert!(flight.rounds_seen() < 6, "the run died before its budget");

    let dir = std::env::temp_dir().join("smst_adversary_flight_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = flight
        .write_json_to(
            &dir,
            "stall_test",
            &format!("barrier timeout after {timeout:?}"),
        )
        .expect("writing the flight artifact");
    assert_eq!(
        path.file_name().unwrap().to_string_lossy(),
        "FLIGHT_stall_test.json"
    );
    let body = std::fs::read_to_string(&path).unwrap();
    assert!(body.starts_with("{\"schema\":\"smst-flight-v1\",\"name\":\"stall_test\""));
    assert!(body.contains("\"reason\":\"barrier timeout after 50ms\""));
    assert!(
        body.contains("\"round\":0") && body.contains("\"activations\":48"),
        "the final window carries real per-round records: {body}"
    );
}
