//! Fragments, laminar families and fragment hierarchies (Definition 5.1).
//!
//! A *fragment* is a connected subtree of the candidate spanning tree `T`.
//! A *hierarchy* `H` for `T` (Definition 5.1) is a laminar collection of
//! fragments containing `T` itself and every singleton `{v}`. Viewed as a
//! rooted tree (the *hierarchy-tree*), its leaves are the singletons and its
//! root is `T`. A *candidate function* χ (Definition 5.2) maps every fragment
//! `F ≠ T` to an edge of `T` such that each fragment is exactly the union of
//! its children's candidate edges; if each candidate edge is moreover a
//! *minimum outgoing* edge of its fragment, then `T` is an MST (Lemma 5.1).
//!
//! These structures are shared by the marker (which builds the hierarchy from
//! the SYNC_MST execution) and by the reference checks the tests use.

use crate::graph::{EdgeId, NodeId, WeightedGraph};
use crate::tree::RootedTree;
use crate::weight::CompositeWeight;
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// The identity of a fragment: the identity of its root node together with
/// its level, exactly as in §3.4/§6 (`ID(F) = ID(r(F)) ∘ lev(F)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FragmentId {
    /// Identity of the fragment's root node.
    pub root_id: u64,
    /// Level of the fragment.
    pub level: u32,
}

impl fmt::Display for FragmentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F(root={}, lev={})", self.root_id, self.level)
    }
}

/// A fragment: a connected subtree of the candidate tree, at a given level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fragment {
    /// The nodes of the fragment.
    pub nodes: BTreeSet<NodeId>,
    /// The fragment's level (SYNC_MST phase at which it was *active*).
    pub level: u32,
    /// The fragment's root: its node closest to the root of `T`.
    pub root: NodeId,
}

impl Fragment {
    /// Creates a fragment from its node set and level, computing the root as
    /// the node of minimum depth in `tree`.
    pub fn new<I: IntoIterator<Item = NodeId>>(tree: &RootedTree, nodes: I, level: u32) -> Self {
        let nodes: BTreeSet<NodeId> = nodes.into_iter().collect();
        let root = *nodes
            .iter()
            .min_by_key(|&&v| tree.depth(v))
            .expect("fragment must be non-empty");
        Fragment { nodes, level, root }
    }

    /// Number of nodes in the fragment.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if the fragment is a singleton.
    pub fn is_singleton(&self) -> bool {
        self.nodes.len() == 1
    }

    /// `true` (never): fragments are non-empty by construction. Provided to
    /// satisfy the `len`/`is_empty` convention.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// `true` if `v` belongs to the fragment.
    pub fn contains(&self, v: NodeId) -> bool {
        self.nodes.contains(&v)
    }

    /// The fragment's identity `ID(F) = ID(root) ∘ level`.
    pub fn id(&self, g: &WeightedGraph) -> FragmentId {
        FragmentId {
            root_id: g.id(self.root),
            level: self.level,
        }
    }

    /// All edges of `g` that are *outgoing* from the fragment (exactly one
    /// endpoint inside).
    pub fn outgoing_edges(&self, g: &WeightedGraph) -> Vec<EdgeId> {
        let mut out = Vec::new();
        for &v in &self.nodes {
            for &e in g.incident_edges(v) {
                let other = g.edge(e).other(v);
                if !self.contains(other) {
                    out.push(e);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The minimum outgoing edge of the fragment under the composite weights
    /// ω′ (with the candidate-tree indicator supplied per edge by `in_tree`).
    ///
    /// Returns `None` if the fragment has no outgoing edge (i.e. it spans the
    /// whole graph).
    pub fn minimum_outgoing_edge<F>(&self, g: &WeightedGraph, in_tree: F) -> Option<EdgeId>
    where
        F: Fn(EdgeId) -> bool,
    {
        self.outgoing_edges(g)
            .into_iter()
            .min_by_key(|&e| g.composite_weight(e, in_tree(e)))
    }

    /// The minimum outgoing edge's composite weight (see
    /// [`Self::minimum_outgoing_edge`]).
    pub fn minimum_outgoing_weight<F>(
        &self,
        g: &WeightedGraph,
        in_tree: F,
    ) -> Option<CompositeWeight>
    where
        F: Fn(EdgeId) -> bool,
    {
        let in_tree_ref = &in_tree;
        self.outgoing_edges(g)
            .into_iter()
            .map(|e| g.composite_weight(e, in_tree_ref(e)))
            .min()
    }
}

/// A fragment hierarchy (Definition 5.1) together with an optional candidate
/// function χ (Definition 5.2).
///
/// Fragments are stored in a flat vector; `parent`/`children` encode the
/// hierarchy-tree induced by containment.
#[derive(Debug, Clone, Default)]
pub struct Hierarchy {
    fragments: Vec<Fragment>,
    parent: Vec<Option<usize>>,
    children: Vec<Vec<usize>>,
    /// Candidate edge χ(F) for each non-top fragment.
    candidate: Vec<Option<EdgeId>>,
}

impl Hierarchy {
    /// Builds a hierarchy from a flat list of fragments.
    ///
    /// The hierarchy-tree is derived from containment: the parent of `F` is
    /// the smallest fragment strictly containing `F`. The input is expected
    /// to be laminar; call [`Self::validate`] to verify all the properties of
    /// Definition 5.1.
    pub fn from_fragments(fragments: Vec<Fragment>) -> Self {
        let n = fragments.len();
        let mut parent: Vec<Option<usize>> = vec![None; n];
        for i in 0..n {
            let mut best: Option<usize> = None;
            for j in 0..n {
                if i == j {
                    continue;
                }
                if fragments[j].nodes.is_superset(&fragments[i].nodes)
                    && fragments[j].nodes.len() > fragments[i].nodes.len()
                {
                    let better = match best {
                        None => true,
                        Some(b) => fragments[j].nodes.len() < fragments[b].nodes.len(),
                    };
                    if better {
                        best = Some(j);
                    }
                }
            }
            parent[i] = best;
        }
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, &p) in parent.iter().enumerate() {
            if let Some(p) = p {
                children[p].push(i);
            }
        }
        Hierarchy {
            candidate: vec![None; n],
            fragments,
            parent,
            children,
        }
    }

    /// Number of fragments.
    pub fn len(&self) -> usize {
        self.fragments.len()
    }

    /// `true` if the hierarchy contains no fragments.
    pub fn is_empty(&self) -> bool {
        self.fragments.is_empty()
    }

    /// The fragments, in storage order.
    pub fn fragments(&self) -> &[Fragment] {
        &self.fragments
    }

    /// The fragment at a given index.
    pub fn fragment(&self, idx: usize) -> &Fragment {
        &self.fragments[idx]
    }

    /// The index of the parent fragment in the hierarchy-tree.
    pub fn parent_of(&self, idx: usize) -> Option<usize> {
        self.parent[idx]
    }

    /// The indices of the child fragments in the hierarchy-tree.
    pub fn children_of(&self, idx: usize) -> &[usize] {
        &self.children[idx]
    }

    /// Sets the candidate edge χ(F) of a fragment.
    pub fn set_candidate(&mut self, idx: usize, edge: EdgeId) {
        self.candidate[idx] = Some(edge);
    }

    /// The candidate edge χ(F) of a fragment, if assigned.
    pub fn candidate(&self, idx: usize) -> Option<EdgeId> {
        self.candidate[idx]
    }

    /// The height of the hierarchy: the maximum fragment level.
    pub fn height(&self) -> u32 {
        self.fragments.iter().map(|f| f.level).max().unwrap_or(0)
    }

    /// Indices of the fragments containing a node, sorted by level.
    pub fn fragments_containing(&self, v: NodeId) -> Vec<usize> {
        let mut idxs: Vec<usize> = (0..self.fragments.len())
            .filter(|&i| self.fragments[i].contains(v))
            .collect();
        idxs.sort_by_key(|&i| self.fragments[i].level);
        idxs
    }

    /// The index of the level-`lev` fragment containing `v`, if one exists.
    pub fn fragment_at_level(&self, v: NodeId, lev: u32) -> Option<usize> {
        (0..self.fragments.len())
            .find(|&i| self.fragments[i].level == lev && self.fragments[i].contains(v))
    }

    /// Checks the structural properties of Definition 5.1:
    ///
    /// 1. the whole tree and every singleton appear as fragments;
    /// 2. the collection is laminar;
    /// 3. levels strictly increase along containment;
    /// 4. every fragment induces a connected subtree of `tree`;
    /// 5. no two distinct fragments share both a node and a level.
    ///
    /// Returns a human-readable description of the first violation found.
    pub fn validate(
        &self,
        g: &WeightedGraph,
        tree: &RootedTree,
    ) -> std::result::Result<(), String> {
        let n = g.node_count();
        let all: BTreeSet<NodeId> = g.nodes().collect();
        if !self.fragments.iter().any(|f| f.nodes == all) {
            return Err("the whole tree is not a fragment of the hierarchy".into());
        }
        for v in g.nodes() {
            if !self
                .fragments
                .iter()
                .any(|f| f.is_singleton() && f.contains(v))
            {
                return Err(format!("missing singleton fragment for node {v}"));
            }
        }
        // laminar
        for i in 0..self.fragments.len() {
            for j in (i + 1)..self.fragments.len() {
                let a = &self.fragments[i].nodes;
                let b = &self.fragments[j].nodes;
                let inter = a.intersection(b).count();
                if inter > 0 && !(a.is_subset(b) || b.is_subset(a)) {
                    return Err(format!("fragments {i} and {j} overlap without containment"));
                }
            }
        }
        // levels strictly increase along containment; connectivity; uniqueness per (node, level)
        for (i, f) in self.fragments.iter().enumerate() {
            if let Some(p) = self.parent[i] {
                if self.fragments[p].level <= f.level {
                    return Err(format!(
                        "fragment {i} (level {}) has parent {p} of level {}",
                        f.level, self.fragments[p].level
                    ));
                }
            }
            if !fragment_is_connected(tree, f) {
                return Err(format!("fragment {i} is not a connected subtree"));
            }
            for (j, f2) in self.fragments.iter().enumerate() {
                if i < j && f.level == f2.level && f.nodes.intersection(&f2.nodes).next().is_some()
                {
                    return Err(format!(
                        "fragments {i} and {j} share a node at the same level {}",
                        f.level
                    ));
                }
            }
            let _ = n;
        }
        Ok(())
    }

    /// Checks that the stored candidate edges form a candidate function χ
    /// (Definition 5.2): every non-top fragment has exactly one candidate,
    /// the candidate is an outgoing tree edge, and every fragment equals the
    /// union of its strict descendants' candidates.
    pub fn validate_candidate_function(
        &self,
        g: &WeightedGraph,
        tree: &RootedTree,
    ) -> std::result::Result<(), String> {
        let all: BTreeSet<NodeId> = g.nodes().collect();
        for (i, f) in self.fragments.iter().enumerate() {
            let is_top = f.nodes == all;
            match (is_top, self.candidate[i]) {
                (true, Some(_)) => {
                    return Err("the whole-tree fragment must not have a candidate".into())
                }
                (false, None) => return Err(format!("fragment {i} has no candidate edge")),
                (false, Some(e)) => {
                    if !tree.contains_edge(e) {
                        return Err(format!("candidate of fragment {i} is not a tree edge"));
                    }
                    let edge = g.edge(e);
                    let inside = f.contains(edge.u) as u8 + f.contains(edge.v) as u8;
                    if inside != 1 {
                        return Err(format!(
                            "candidate of fragment {i} is not outgoing (has {inside} endpoints inside)"
                        ));
                    }
                }
                (true, None) => {}
            }
        }
        // E(F) = { χ(F') : F' strictly contained in F }
        for (i, f) in self.fragments.iter().enumerate() {
            let mut expected: BTreeSet<EdgeId> = BTreeSet::new();
            for (j, f2) in self.fragments.iter().enumerate() {
                if i != j && f2.nodes.is_subset(&f.nodes) && f2.nodes.len() < f.nodes.len() {
                    if let Some(e) = self.candidate[j] {
                        expected.insert(e);
                    }
                }
            }
            let actual: BTreeSet<EdgeId> = tree
                .edges()
                .into_iter()
                .filter(|&e| {
                    let edge = g.edge(e);
                    f.contains(edge.u) && f.contains(edge.v)
                })
                .collect();
            if expected != actual {
                return Err(format!(
                    "fragment {i}: edge set does not equal the union of its descendants' candidates"
                ));
            }
        }
        Ok(())
    }

    /// Checks the *Minimality* property (P2 of §3.2): every candidate edge is
    /// a minimum outgoing edge of its fragment under ω′.
    pub fn validate_minimality(
        &self,
        g: &WeightedGraph,
        tree: &RootedTree,
    ) -> std::result::Result<(), String> {
        let tree_edges: BTreeSet<EdgeId> = tree.edges().into_iter().collect();
        for (i, f) in self.fragments.iter().enumerate() {
            if let Some(chi) = self.candidate[i] {
                let min = f
                    .minimum_outgoing_edge(g, |e| tree_edges.contains(&e))
                    .ok_or_else(|| format!("fragment {i} has no outgoing edge"))?;
                if min != chi {
                    return Err(format!(
                        "fragment {i}: candidate {chi:?} is not the minimum outgoing edge {min:?}"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Groups fragment indices by level.
    pub fn levels(&self) -> HashMap<u32, Vec<usize>> {
        let mut map: HashMap<u32, Vec<usize>> = HashMap::new();
        for (i, f) in self.fragments.iter().enumerate() {
            map.entry(f.level).or_default().push(i);
        }
        map
    }
}

/// `true` if the fragment's node set induces a connected subtree of `tree`.
fn fragment_is_connected(tree: &RootedTree, f: &Fragment) -> bool {
    // A set S of nodes induces a connected subtree iff every node except the
    // (unique) minimum-depth node has its parent in S.
    let mut roots = 0;
    for &v in &f.nodes {
        match tree.parent(v) {
            Some(p) if f.contains(p) => {}
            _ => roots += 1,
        }
    }
    roots == 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeId;
    use crate::mst::kruskal;

    /// Path 0-1-2-3 (weights 1, 10, 3) with a hierarchy: singletons (lvl 0),
    /// {0,1} and {2,3} (lvl 1), whole tree (lvl 2). The middle edge is the
    /// heaviest, so the level-1 merges along the outer edges are minimal.
    fn sample() -> (WeightedGraph, RootedTree, Hierarchy) {
        let mut g = WeightedGraph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1), 1).unwrap();
        g.add_edge(NodeId(1), NodeId(2), 10).unwrap();
        g.add_edge(NodeId(2), NodeId(3), 3).unwrap();
        let mst = kruskal(&g);
        let tree = mst.rooted_at(&g, NodeId(0)).unwrap();
        let mut frags = Vec::new();
        for v in 0..4 {
            frags.push(Fragment::new(&tree, [NodeId(v)], 0));
        }
        frags.push(Fragment::new(&tree, [NodeId(0), NodeId(1)], 1));
        frags.push(Fragment::new(&tree, [NodeId(2), NodeId(3)], 1));
        frags.push(Fragment::new(&tree, (0..4).map(NodeId), 2));
        let h = Hierarchy::from_fragments(frags);
        (g, tree, h)
    }

    #[test]
    fn hierarchy_tree_structure() {
        let (_, _, h) = sample();
        assert_eq!(h.len(), 7);
        assert_eq!(h.height(), 2);
        // the whole-tree fragment is index 6 and has two children at level 1
        assert_eq!(h.children_of(6).len(), 2);
        assert_eq!(h.parent_of(4), Some(6));
        assert_eq!(h.parent_of(0), Some(4));
    }

    #[test]
    fn validate_accepts_legal_hierarchy() {
        let (g, t, h) = sample();
        assert_eq!(h.validate(&g, &t), Ok(()));
    }

    #[test]
    fn validate_rejects_missing_singleton() {
        let (g, t, _) = sample();
        let frags = vec![
            Fragment::new(&t, (0..4).map(NodeId), 1),
            Fragment::new(&t, [NodeId(0)], 0),
        ];
        let h = Hierarchy::from_fragments(frags);
        assert!(h.validate(&g, &t).is_err());
    }

    #[test]
    fn validate_rejects_non_laminar() {
        let (g, t, _) = sample();
        let mut frags: Vec<Fragment> = (0..4).map(|v| Fragment::new(&t, [NodeId(v)], 0)).collect();
        frags.push(Fragment::new(&t, [NodeId(0), NodeId(1), NodeId(2)], 1));
        frags.push(Fragment::new(&t, [NodeId(1), NodeId(2), NodeId(3)], 1));
        frags.push(Fragment::new(&t, (0..4).map(NodeId), 2));
        let h = Hierarchy::from_fragments(frags);
        assert!(h.validate(&g, &t).is_err());
    }

    #[test]
    fn validate_rejects_disconnected_fragment() {
        let (g, t, _) = sample();
        let mut frags: Vec<Fragment> = (0..4).map(|v| Fragment::new(&t, [NodeId(v)], 0)).collect();
        frags.push(Fragment::new(&t, [NodeId(0), NodeId(3)], 1));
        frags.push(Fragment::new(&t, (0..4).map(NodeId), 2));
        let h = Hierarchy::from_fragments(frags);
        assert!(h.validate(&g, &t).is_err());
    }

    #[test]
    fn candidate_function_validation() {
        let (g, t, mut h) = sample();
        // candidates: each singleton points at its path edge; level-1 fragments
        // point at the middle edge.
        let e01 = g.edge_between(NodeId(0), NodeId(1)).unwrap();
        let e12 = g.edge_between(NodeId(1), NodeId(2)).unwrap();
        let e23 = g.edge_between(NodeId(2), NodeId(3)).unwrap();
        h.set_candidate(0, e01);
        h.set_candidate(1, e01);
        h.set_candidate(2, e23);
        h.set_candidate(3, e23);
        h.set_candidate(4, e12);
        h.set_candidate(5, e12);
        assert_eq!(h.validate_candidate_function(&g, &t), Ok(()));
        assert_eq!(h.validate_minimality(&g, &t), Ok(()));
    }

    #[test]
    fn candidate_function_rejects_non_outgoing_candidate() {
        let (g, t, mut h) = sample();
        let e01 = g.edge_between(NodeId(0), NodeId(1)).unwrap();
        // fragment {0,1} must not select its own internal edge
        for i in 0..6 {
            h.set_candidate(i, e01);
        }
        assert!(h.validate_candidate_function(&g, &t).is_err());
    }

    #[test]
    fn minimality_rejects_heavier_choice() {
        let (g, t, mut h) = sample();
        let e01 = g.edge_between(NodeId(0), NodeId(1)).unwrap();
        let e12 = g.edge_between(NodeId(1), NodeId(2)).unwrap();
        let e23 = g.edge_between(NodeId(2), NodeId(3)).unwrap();
        h.set_candidate(0, e01);
        // singleton {1} selects the heavy middle edge e12 even though e01 is
        // lighter -> violates minimality
        h.set_candidate(1, e12);
        h.set_candidate(2, e23);
        h.set_candidate(3, e23);
        h.set_candidate(4, e12);
        h.set_candidate(5, e12);
        assert!(h.validate_minimality(&g, &t).is_err());
    }

    #[test]
    fn fragment_queries() {
        let (g, t, h) = sample();
        let f = h.fragment(4);
        assert_eq!(f.len(), 2);
        assert!(!f.is_singleton());
        assert!(!f.is_empty());
        assert_eq!(f.root, NodeId(0));
        assert_eq!(f.id(&g).level, 1);
        let out = f.outgoing_edges(&g);
        assert_eq!(out.len(), 1);
        let min = f.minimum_outgoing_edge(&g, |_| false).unwrap();
        assert_eq!(min, g.edge_between(NodeId(1), NodeId(2)).unwrap());
        assert_eq!(h.fragments_containing(NodeId(0)), vec![0, 4, 6]);
        assert_eq!(h.fragment_at_level(NodeId(3), 1), Some(5));
        assert_eq!(h.fragment_at_level(NodeId(3), 3), None);
        assert_eq!(h.levels()[&1].len(), 2);
        let _ = t;
    }

    #[test]
    fn whole_graph_fragment_has_no_outgoing_edge() {
        let (g, t, h) = sample();
        let top = h.fragment(6);
        assert!(top.outgoing_edges(&g).is_empty());
        assert!(top.minimum_outgoing_edge(&g, |_| false).is_none());
        let _ = t;
    }

    #[test]
    fn fragment_id_display() {
        let id = FragmentId {
            root_id: 9,
            level: 3,
        };
        assert_eq!(id.to_string(), "F(root=9, lev=3)");
    }
}
