//! The undirected, weighted, port-numbered graph underlying the network model.
//!
//! The paper's model (§2.1): each node `v` has a unique identity `ID(v)` of
//! `O(log n)` bits, and every edge incident to `v` carries a *port number*
//! that is unique at `v` (but unrelated to the port number of the same edge at
//! the other endpoint). [`WeightedGraph`] represents exactly this: nodes are
//! dense indices [`NodeId`], identities are arbitrary `u64`s, and each node's
//! incidence list defines its port numbering (port `p` of node `v` is the
//! `p`-th entry of `v`'s incidence list).

use crate::error::GraphError;
use crate::weight::{CompositeWeight, Weight};
use crate::Result;
use std::collections::VecDeque;
use std::fmt;

/// A dense node index (`0..n`).
///
/// Distinct from the node's *identity* ([`WeightedGraph::id`]), which is the
/// `O(log n)`-bit value the distributed algorithms actually compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// A dense edge index (`0..m`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub usize);

/// A port number, unique among the ports of a single node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Port(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        NodeId(v)
    }
}

impl NodeId {
    /// Returns the underlying dense index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl EdgeId {
    /// Returns the underlying dense index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl Port {
    /// Returns the underlying port number.
    pub fn index(self) -> usize {
        self.0
    }
}

/// An undirected weighted edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// One endpoint.
    pub u: NodeId,
    /// The other endpoint.
    pub v: NodeId,
    /// The raw (possibly non-distinct) weight ω(e).
    pub weight: Weight,
}

impl Edge {
    /// Given one endpoint, returns the other.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not an endpoint of this edge.
    pub fn other(&self, x: NodeId) -> NodeId {
        if x == self.u {
            self.v
        } else if x == self.v {
            self.u
        } else {
            panic!(
                "node {x} is not an endpoint of edge ({}, {})",
                self.u, self.v
            )
        }
    }

    /// Returns `true` if `x` is an endpoint of this edge.
    pub fn has_endpoint(&self, x: NodeId) -> bool {
        x == self.u || x == self.v
    }
}

/// An undirected, edge-weighted, port-numbered graph.
///
/// Nodes are added first (with explicit identities or defaults), then edges.
/// The incidence list of each node defines its port numbering: the `p`-th
/// incident edge of `v` is reachable through `Port(p)`.
///
/// # Examples
///
/// ```
/// use smst_graph::{WeightedGraph, NodeId};
///
/// let mut g = WeightedGraph::new();
/// let a = g.add_node();
/// let b = g.add_node();
/// let c = g.add_node();
/// g.add_edge(a, b, 5).unwrap();
/// g.add_edge(b, c, 3).unwrap();
/// assert_eq!(g.node_count(), 3);
/// assert_eq!(g.degree(b), 2);
/// assert!(g.is_connected());
/// ```
#[derive(Debug, Clone, Default)]
pub struct WeightedGraph {
    ids: Vec<u64>,
    edges: Vec<Edge>,
    /// incidence[v][p] = edge id reachable from v through port p.
    incidence: Vec<Vec<EdgeId>>,
}

impl WeightedGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a graph with `n` isolated nodes whose identities equal their
    /// indices.
    pub fn with_nodes(n: usize) -> Self {
        let mut g = Self::new();
        for _ in 0..n {
            g.add_node();
        }
        g
    }

    /// Adds a node whose identity is its index, returning its [`NodeId`].
    pub fn add_node(&mut self) -> NodeId {
        let id = self.ids.len() as u64;
        self.add_node_with_id(id)
    }

    /// Adds a node with an explicit identity, returning its [`NodeId`].
    pub fn add_node_with_id(&mut self, id: u64) -> NodeId {
        self.ids.push(id);
        self.incidence.push(Vec::new());
        NodeId(self.ids.len() - 1)
    }

    /// Adds an undirected edge of the given weight.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::SelfLoop`] if `u == v`,
    /// [`GraphError::UnknownNode`] if either endpoint does not exist, and
    /// [`GraphError::DuplicateEdge`] if the edge already exists.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, weight: Weight) -> Result<EdgeId> {
        if u == v {
            return Err(GraphError::SelfLoop(u.0));
        }
        self.check_node(u)?;
        self.check_node(v)?;
        if self.edge_between(u, v).is_some() {
            return Err(GraphError::DuplicateEdge(u.0, v.0));
        }
        let id = EdgeId(self.edges.len());
        self.edges.push(Edge { u, v, weight });
        self.incidence[u.0].push(id);
        self.incidence[v.0].push(id);
        Ok(id)
    }

    fn check_node(&self, v: NodeId) -> Result<()> {
        if v.0 < self.ids.len() {
            Ok(())
        } else {
            Err(GraphError::UnknownNode(v.0))
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.ids.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.ids.len()).map(NodeId)
    }

    /// The edges of the graph.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Iterator over `(EdgeId, &Edge)` pairs.
    pub fn edge_entries(&self) -> impl Iterator<Item = (EdgeId, &Edge)> + '_ {
        self.edges.iter().enumerate().map(|(i, e)| (EdgeId(i), e))
    }

    /// The identity `ID(v)` of a node.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn id(&self, v: NodeId) -> u64 {
        self.ids[v.0]
    }

    /// Looks up a node by identity, if present.
    pub fn node_by_id(&self, id: u64) -> Option<NodeId> {
        self.ids.iter().position(|&x| x == id).map(NodeId)
    }

    /// The edge record for an edge id.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn edge(&self, e: EdgeId) -> &Edge {
        &self.edges[e.0]
    }

    /// The raw weight ω(e) of an edge.
    pub fn weight(&self, e: EdgeId) -> Weight {
        self.edges[e.0].weight
    }

    /// The composite (perturbed, guaranteed-distinct) weight ω′(e) of §2.1.
    ///
    /// `in_candidate_tree` is the indicator `Y(e)`: whether `e` belongs to the
    /// candidate tree being verified.
    pub fn composite_weight(&self, e: EdgeId, in_candidate_tree: bool) -> CompositeWeight {
        let edge = &self.edges[e.0];
        CompositeWeight::new(
            edge.weight,
            in_candidate_tree,
            self.id(edge.u),
            self.id(edge.v),
        )
    }

    /// The degree of a node.
    pub fn degree(&self, v: NodeId) -> usize {
        self.incidence[v.0].len()
    }

    /// The maximum degree Δ of the graph (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        self.incidence.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// The edges incident to a node, in port order.
    pub fn incident_edges(&self, v: NodeId) -> &[EdgeId] {
        &self.incidence[v.0]
    }

    /// The neighbours of a node, in port order.
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.incidence[v.0]
            .iter()
            .map(move |&e| self.edges[e.0].other(v))
    }

    /// The edge reachable from `v` through `port`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownPort`] if the port does not exist at `v`.
    pub fn edge_at_port(&self, v: NodeId, port: Port) -> Result<EdgeId> {
        self.incidence[v.0]
            .get(port.0)
            .copied()
            .ok_or(GraphError::UnknownPort {
                node: v.0,
                port: port.0,
            })
    }

    /// The neighbour reachable from `v` through `port`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownPort`] if the port does not exist at `v`.
    pub fn neighbor_at_port(&self, v: NodeId, port: Port) -> Result<NodeId> {
        Ok(self.edges[self.edge_at_port(v, port)?.0].other(v))
    }

    /// The port through which `v` reaches neighbour `u`, if the edge exists.
    pub fn port_to(&self, v: NodeId, u: NodeId) -> Option<Port> {
        self.incidence[v.0]
            .iter()
            .position(|&e| self.edges[e.0].other(v) == u)
            .map(Port)
    }

    /// The edge between `u` and `v`, if present (`None` when `u == v`, since
    /// self-loops are not allowed).
    pub fn edge_between(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        if u == v || u.0 >= self.ids.len() || v.0 >= self.ids.len() {
            return None;
        }
        self.incidence[u.0]
            .iter()
            .copied()
            .find(|&e| self.edges[e.0].has_endpoint(v))
    }

    /// Breadth-first hop distances from `source` (`usize::MAX` for unreachable
    /// nodes).
    pub fn bfs_distances(&self, source: NodeId) -> Vec<usize> {
        let mut dist = vec![usize::MAX; self.node_count()];
        let mut queue = VecDeque::new();
        dist[source.0] = 0;
        queue.push_back(source);
        while let Some(v) = queue.pop_front() {
            for u in self.neighbors(v) {
                if dist[u.0] == usize::MAX {
                    dist[u.0] = dist[v.0] + 1;
                    queue.push_back(u);
                }
            }
        }
        dist
    }

    /// Hop distance between two nodes (`None` if unreachable).
    pub fn hop_distance(&self, u: NodeId, v: NodeId) -> Option<usize> {
        let d = self.bfs_distances(u)[v.0];
        if d == usize::MAX {
            None
        } else {
            Some(d)
        }
    }

    /// Whether the graph is connected (the empty graph counts as connected).
    pub fn is_connected(&self) -> bool {
        if self.node_count() == 0 {
            return true;
        }
        self.bfs_distances(NodeId(0))
            .iter()
            .all(|&d| d != usize::MAX)
    }

    /// The hop diameter of the graph.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Disconnected`] if the graph is not connected.
    pub fn diameter(&self) -> Result<usize> {
        if !self.is_connected() {
            return Err(GraphError::Disconnected);
        }
        let mut diam = 0;
        for v in self.nodes() {
            let d = self.bfs_distances(v);
            diam = diam.max(
                d.into_iter()
                    .filter(|&x| x != usize::MAX)
                    .max()
                    .unwrap_or(0),
            );
        }
        Ok(diam)
    }

    /// Total weight of a set of edges.
    pub fn total_weight<I: IntoIterator<Item = EdgeId>>(&self, edges: I) -> u128 {
        edges
            .into_iter()
            .map(|e| u128::from(self.edges[e.0].weight))
            .sum()
    }

    /// Returns `true` if all raw edge weights are pairwise distinct.
    pub fn has_distinct_weights(&self) -> bool {
        let mut ws: Vec<Weight> = self.edges.iter().map(|e| e.weight).collect();
        ws.sort_unstable();
        ws.windows(2).all(|w| w[0] != w[1])
    }
}

impl fmt::Display for WeightedGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "WeightedGraph(n={}, m={}, Δ={})",
            self.node_count(),
            self.edge_count(),
            self.max_degree()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> WeightedGraph {
        let mut g = WeightedGraph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1), 1).unwrap();
        g.add_edge(NodeId(1), NodeId(2), 2).unwrap();
        g.add_edge(NodeId(2), NodeId(0), 3).unwrap();
        g
    }

    #[test]
    fn add_nodes_and_edges() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.degree(NodeId(0)), 2);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn rejects_self_loop() {
        let mut g = WeightedGraph::with_nodes(2);
        assert_eq!(
            g.add_edge(NodeId(0), NodeId(0), 1),
            Err(GraphError::SelfLoop(0))
        );
    }

    #[test]
    fn rejects_duplicate_edge() {
        let mut g = WeightedGraph::with_nodes(2);
        g.add_edge(NodeId(0), NodeId(1), 1).unwrap();
        assert_eq!(
            g.add_edge(NodeId(1), NodeId(0), 9),
            Err(GraphError::DuplicateEdge(1, 0))
        );
    }

    #[test]
    fn rejects_unknown_node() {
        let mut g = WeightedGraph::with_nodes(2);
        assert_eq!(
            g.add_edge(NodeId(0), NodeId(7), 1),
            Err(GraphError::UnknownNode(7))
        );
    }

    #[test]
    fn port_numbering_round_trip() {
        let g = triangle();
        for v in g.nodes() {
            for (p, &e) in g.incident_edges(v).iter().enumerate() {
                assert_eq!(g.edge_at_port(v, Port(p)).unwrap(), e);
                let u = g.neighbor_at_port(v, Port(p)).unwrap();
                assert_eq!(g.port_to(v, u), Some(Port(p)));
            }
        }
    }

    #[test]
    fn unknown_port_is_an_error() {
        let g = triangle();
        assert!(matches!(
            g.edge_at_port(NodeId(0), Port(5)),
            Err(GraphError::UnknownPort { node: 0, port: 5 })
        ));
    }

    #[test]
    fn edge_between_is_symmetric() {
        let g = triangle();
        assert_eq!(
            g.edge_between(NodeId(0), NodeId(1)),
            g.edge_between(NodeId(1), NodeId(0))
        );
        assert!(g.edge_between(NodeId(0), NodeId(0)).is_none());
    }

    #[test]
    fn bfs_and_diameter() {
        let mut g = WeightedGraph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1), 1).unwrap();
        g.add_edge(NodeId(1), NodeId(2), 1).unwrap();
        g.add_edge(NodeId(2), NodeId(3), 1).unwrap();
        assert_eq!(g.bfs_distances(NodeId(0)), vec![0, 1, 2, 3]);
        assert_eq!(g.diameter().unwrap(), 3);
        assert_eq!(g.hop_distance(NodeId(0), NodeId(3)), Some(3));
    }

    #[test]
    fn disconnected_graph_detected() {
        let mut g = WeightedGraph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1), 1).unwrap();
        g.add_edge(NodeId(2), NodeId(3), 1).unwrap();
        assert!(!g.is_connected());
        assert_eq!(g.diameter(), Err(GraphError::Disconnected));
        assert_eq!(g.hop_distance(NodeId(0), NodeId(3)), None);
    }

    #[test]
    fn composite_weight_uses_node_identities() {
        let mut g = WeightedGraph::new();
        let a = g.add_node_with_id(100);
        let b = g.add_node_with_id(7);
        let e = g.add_edge(a, b, 42).unwrap();
        let w = g.composite_weight(e, true);
        assert_eq!(w.weight, 42);
        assert_eq!(w.id_min, 7);
        assert_eq!(w.id_max, 100);
        assert!(w.in_candidate_tree());
    }

    #[test]
    fn distinct_weight_detection() {
        let mut g = WeightedGraph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1), 1).unwrap();
        g.add_edge(NodeId(1), NodeId(2), 1).unwrap();
        assert!(!g.has_distinct_weights());
        let g2 = triangle();
        assert!(g2.has_distinct_weights());
    }

    #[test]
    fn total_weight_sums() {
        let g = triangle();
        let all: Vec<EdgeId> = (0..3).map(EdgeId).collect();
        assert_eq!(g.total_weight(all), 6);
    }

    #[test]
    fn node_by_id_lookup() {
        let mut g = WeightedGraph::new();
        g.add_node_with_id(55);
        g.add_node_with_id(66);
        assert_eq!(g.node_by_id(66), Some(NodeId(1)));
        assert_eq!(g.node_by_id(1), None);
    }

    #[test]
    fn display_formats() {
        let g = triangle();
        assert_eq!(g.to_string(), "WeightedGraph(n=3, m=3, Δ=2)");
        assert_eq!(NodeId(4).to_string(), "v4");
        assert_eq!(EdgeId(2).to_string(), "e2");
        assert_eq!(Port(1).to_string(), "p1");
    }
}
