//! Graph families used by the tests, examples and experiments.
//!
//! All generators are deterministic in their `seed` argument, assign distinct
//! raw edge weights where convenient, and produce connected graphs (except
//! where documented). These are the workloads of the paper's experiments:
//! random connected graphs for Table 1 and the scaling figures, paths/rings
//! for the low-degree extremes, stars and complete graphs for the Δ sweeps,
//! grids and caterpillars as structured topologies.

use crate::graph::{NodeId, WeightedGraph};
use smst_rng::{Rng, SeedableRng, SliceRandom, StdRng};

/// A path `0 − 1 − ⋯ − (n−1)` with pseudo-random distinct weights.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn path_graph(n: usize, seed: u64) -> WeightedGraph {
    assert!(n > 0, "path_graph requires at least one node");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = WeightedGraph::with_nodes(n);
    let mut weights = distinct_weights(n.saturating_sub(1), &mut rng);
    for i in 0..n - 1 {
        g.add_edge(NodeId(i), NodeId(i + 1), weights.pop().unwrap())
            .expect("path edges are unique");
    }
    g
}

/// A cycle on `n ≥ 3` nodes with distinct weights.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn ring_graph(n: usize, seed: u64) -> WeightedGraph {
    assert!(n >= 3, "ring_graph requires at least three nodes");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = WeightedGraph::with_nodes(n);
    let mut weights = distinct_weights(n, &mut rng);
    for i in 0..n {
        g.add_edge(NodeId(i), NodeId((i + 1) % n), weights.pop().unwrap())
            .expect("ring edges are unique");
    }
    g
}

/// The complete graph on `n` nodes with distinct weights.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn complete_graph(n: usize, seed: u64) -> WeightedGraph {
    assert!(n > 0, "complete_graph requires at least one node");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = WeightedGraph::with_nodes(n);
    let mut weights = distinct_weights(n * (n - 1) / 2, &mut rng);
    for i in 0..n {
        for j in (i + 1)..n {
            g.add_edge(NodeId(i), NodeId(j), weights.pop().unwrap())
                .expect("complete graph edges are unique");
        }
    }
    g
}

/// A star: node 0 is the centre, connected to every other node.
///
/// The star maximizes Δ and is used for the asynchronous detection-time
/// experiments (whose bound is `O(Δ log³ n)`).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn star_graph(n: usize, seed: u64) -> WeightedGraph {
    assert!(n > 0, "star_graph requires at least one node");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = WeightedGraph::with_nodes(n);
    let mut weights = distinct_weights(n.saturating_sub(1), &mut rng);
    for i in 1..n {
        g.add_edge(NodeId(0), NodeId(i), weights.pop().unwrap())
            .expect("star edges are unique");
    }
    g
}

/// An `rows × cols` grid with distinct weights.
///
/// # Panics
///
/// Panics if `rows == 0` or `cols == 0`.
pub fn grid_graph(rows: usize, cols: usize, seed: u64) -> WeightedGraph {
    assert!(
        rows > 0 && cols > 0,
        "grid_graph requires positive dimensions"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rows * cols;
    let mut g = WeightedGraph::with_nodes(n);
    let m = rows * (cols - 1) + cols * (rows - 1);
    let mut weights = distinct_weights(m, &mut rng);
    let at = |r: usize, c: usize| NodeId(r * cols + c);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_edge(at(r, c), at(r, c + 1), weights.pop().unwrap())
                    .expect("grid edges are unique");
            }
            if r + 1 < rows {
                g.add_edge(at(r, c), at(r + 1, c), weights.pop().unwrap())
                    .expect("grid edges are unique");
            }
        }
    }
    g
}

/// A caterpillar: a spine path of `spine` nodes, each with `legs` leaf
/// children. Total nodes: `spine * (1 + legs)`.
///
/// # Panics
///
/// Panics if `spine == 0`.
pub fn caterpillar_graph(spine: usize, legs: usize, seed: u64) -> WeightedGraph {
    assert!(spine > 0, "caterpillar_graph requires a non-empty spine");
    let mut rng = StdRng::seed_from_u64(seed);
    let n = spine * (1 + legs);
    let mut g = WeightedGraph::with_nodes(n);
    let m = (spine - 1) + spine * legs;
    let mut weights = distinct_weights(m, &mut rng);
    for i in 0..spine - 1 {
        g.add_edge(NodeId(i), NodeId(i + 1), weights.pop().unwrap())
            .expect("spine edges are unique");
    }
    for s in 0..spine {
        for l in 0..legs {
            let leaf = spine + s * legs + l;
            g.add_edge(NodeId(s), NodeId(leaf), weights.pop().unwrap())
                .expect("leg edges are unique");
        }
    }
    g
}

/// A random connected graph with `n` nodes and (approximately) `m` edges:
/// a uniformly random spanning tree backbone plus random extra edges, with
/// distinct weights.
///
/// If `m < n − 1` the edge count is raised to `n − 1`; if `m` exceeds the
/// complete graph it is clamped.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn random_connected_graph(n: usize, m: usize, seed: u64) -> WeightedGraph {
    assert!(n > 0, "random_connected_graph requires at least one node");
    let mut rng = StdRng::seed_from_u64(seed);
    let max_m = n * n.saturating_sub(1) / 2;
    let m = m.clamp(n.saturating_sub(1), max_m.max(n.saturating_sub(1)));
    let mut g = WeightedGraph::with_nodes(n);
    let mut weights = distinct_weights(m, &mut rng);

    // random spanning tree backbone: random permutation, attach each node to a
    // random earlier node (a random recursive tree).
    let mut perm: Vec<usize> = (0..n).collect();
    perm.shuffle(&mut rng);
    for i in 1..n {
        let j = rng.gen_range(0..i);
        g.add_edge(NodeId(perm[i]), NodeId(perm[j]), weights.pop().unwrap())
            .expect("backbone edges are unique");
    }
    // extra edges
    let mut attempts = 0usize;
    while g.edge_count() < m && attempts < 50 * m + 100 {
        attempts += 1;
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v {
            continue;
        }
        if g.edge_between(NodeId(u), NodeId(v)).is_some() {
            continue;
        }
        let w = weights
            .pop()
            .unwrap_or_else(|| rng.gen_range(1u64..1_000_000) * 2 + 1);
        g.add_edge(NodeId(u), NodeId(v), w)
            .expect("checked for duplicates");
    }
    g
}

/// A random connected graph with scrambled (non-consecutive) node identities.
///
/// Useful for checking that algorithms only rely on identity *comparisons*,
/// never on identities being `0..n`.
pub fn random_graph_scrambled_ids(n: usize, m: usize, seed: u64) -> WeightedGraph {
    let base = random_connected_graph(n, m, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAD_BEEF);
    let mut ids: Vec<u64> = (0..n as u64).map(|i| i * 7 + 3).collect();
    ids.shuffle(&mut rng);
    let mut g = WeightedGraph::new();
    for &id in ids.iter().take(n) {
        g.add_node_with_id(id);
    }
    for e in base.edges() {
        g.add_edge(e.u, e.v, e.weight)
            .expect("copying unique edges");
    }
    g
}

/// A circulant "expander": every node `v` is joined to `v ± o (mod n)` for
/// each offset `o` in a set containing `1` plus `degree/2 − 1` random
/// distinct offsets in `2..=n/2`. Random circulant graphs of constant degree
/// have strong expansion and `O(log n)` diameter w.h.p., giving the
/// execution engine a low-diameter, regular workload family that stresses
/// cross-shard traffic (every shard boundary is crossed by long chords).
///
/// The resulting degree is `2 × offsets` (one less for the antipodal offset
/// on even `n`). Weights are distinct. The graph is connected because
/// offset `1` is always included.
///
/// # Panics
///
/// Panics if `n < 3` or `degree < 2`.
pub fn expander_graph(n: usize, degree: usize, seed: u64) -> WeightedGraph {
    assert!(n >= 3, "expander_graph requires at least three nodes");
    assert!(degree >= 2, "expander_graph requires degree >= 2");
    let mut rng = StdRng::seed_from_u64(seed);
    let wanted = (degree / 2).max(1);
    let mut candidates: Vec<usize> = (2..=n / 2).collect();
    candidates.shuffle(&mut rng);
    let mut offsets = vec![1usize];
    offsets.extend(candidates.into_iter().take(wanted.saturating_sub(1)));

    let edge_count: usize = offsets
        .iter()
        .map(|&o| if 2 * o == n { n / 2 } else { n })
        .sum();
    let mut weights = distinct_weights(edge_count, &mut rng);
    let mut g = WeightedGraph::with_nodes(n);
    for &o in &offsets {
        // the antipodal offset on even n yields each chord twice
        let span = if 2 * o == n { n / 2 } else { n };
        for v in 0..span {
            g.add_edge(NodeId(v), NodeId((v + o) % n), weights.pop().unwrap())
                .expect("circulant chords are unique");
        }
    }
    g
}

/// Distinct odd weights in random order (odd so that explicitly-chosen even
/// weights in tests can never collide with generated ones).
fn distinct_weights(count: usize, rng: &mut StdRng) -> Vec<u64> {
    let mut ws: Vec<u64> = (0..count as u64).map(|i| 2 * i + 1).collect();
    ws.shuffle(rng);
    ws
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn path_ring_star_shapes() {
        let p = path_graph(5, 1);
        assert_eq!((p.node_count(), p.edge_count(), p.max_degree()), (5, 4, 2));
        let r = ring_graph(5, 1);
        assert_eq!((r.node_count(), r.edge_count(), r.max_degree()), (5, 5, 2));
        let s = star_graph(5, 1);
        assert_eq!((s.node_count(), s.edge_count(), s.max_degree()), (5, 4, 4));
    }

    #[test]
    fn complete_graph_edge_count() {
        let g = complete_graph(7, 2);
        assert_eq!(g.edge_count(), 21);
        assert!(g.is_connected());
        assert!(g.has_distinct_weights());
    }

    #[test]
    fn grid_dimensions() {
        let g = grid_graph(3, 4, 9);
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_count(), 3 * 3 + 4 * 2);
        assert!(g.is_connected());
    }

    #[test]
    fn caterpillar_structure() {
        let g = caterpillar_graph(4, 3, 5);
        assert_eq!(g.node_count(), 16);
        assert_eq!(g.edge_count(), 3 + 12);
        assert!(g.is_connected());
        assert_eq!(g.degree(NodeId(15)), 1);
    }

    #[test]
    fn random_graph_is_connected_and_distinct() {
        for seed in 0..8 {
            let g = random_connected_graph(40, 100, seed);
            assert!(g.is_connected());
            assert!(g.has_distinct_weights() || g.edge_count() > 100);
            assert_eq!(g.node_count(), 40);
            assert!(g.edge_count() >= 39);
        }
    }

    #[test]
    fn random_graph_clamps_edge_count() {
        let g = random_connected_graph(5, 1000, 3);
        assert_eq!(g.edge_count(), 10);
        let g2 = random_connected_graph(5, 0, 3);
        assert_eq!(g2.edge_count(), 4);
    }

    #[test]
    fn generators_are_deterministic() {
        let a = random_connected_graph(20, 50, 77);
        let b = random_connected_graph(20, 50, 77);
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn scrambled_ids_are_distinct() {
        let g = random_graph_scrambled_ids(15, 30, 4);
        let mut ids: Vec<u64> = g.nodes().map(|v| g.id(v)).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 15);
        assert!(g.is_connected());
    }

    #[test]
    fn expander_is_connected_regular_and_low_diameter() {
        let g = expander_graph(200, 6, 3);
        assert_eq!(g.node_count(), 200);
        assert!(g.is_connected());
        assert!(g.has_distinct_weights());
        assert!(g.max_degree() <= 6);
        assert!(g.degree(NodeId(17)) >= 4, "circulants are near-regular");
        // 200 nodes, degree 6: an expander's diameter is far below n / 4
        assert!(g.diameter().unwrap() < 50);
        let g2 = expander_graph(200, 6, 3);
        assert_eq!(g.edges(), g2.edges(), "deterministic per seed");
    }

    #[test]
    fn expander_handles_even_antipodal_offset() {
        // n = 6, degree 4: offset 3 (= n/2) may be drawn; every edge unique
        for seed in 0..10 {
            let g = expander_graph(6, 4, seed);
            assert!(g.is_connected());
        }
    }

    #[test]
    fn single_node_generators() {
        assert_eq!(path_graph(1, 0).node_count(), 1);
        assert_eq!(star_graph(1, 0).edge_count(), 0);
        assert_eq!(complete_graph(1, 0).edge_count(), 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(20))]
        #[test]
        fn random_graphs_always_connected(n in 1usize..60, extra in 0usize..100, seed in 0u64..1000) {
            let g = random_connected_graph(n, n + extra, seed);
            prop_assert!(g.is_connected());
            prop_assert!(g.edge_count() >= n.saturating_sub(1));
        }
    }
}
