//! Graph families used by the tests, examples and experiments.
//!
//! All generators are deterministic in their `seed` argument, assign distinct
//! raw edge weights where convenient, and produce connected graphs (except
//! where documented). These are the workloads of the paper's experiments:
//! random connected graphs for Table 1 and the scaling figures, paths/rings
//! for the low-degree extremes, stars and complete graphs for the Δ sweeps,
//! grids and caterpillars as structured topologies.

use crate::graph::{NodeId, WeightedGraph};
use smst_rng::{Rng, SeedableRng, SliceRandom, StdRng};

/// A path `0 − 1 − ⋯ − (n−1)` with pseudo-random distinct weights.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn path_graph(n: usize, seed: u64) -> WeightedGraph {
    assert!(n > 0, "path_graph requires at least one node");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = WeightedGraph::with_nodes(n);
    let mut weights = distinct_weights(n.saturating_sub(1), &mut rng);
    for i in 0..n - 1 {
        g.add_edge(NodeId(i), NodeId(i + 1), weights.pop().unwrap())
            .expect("path edges are unique");
    }
    g
}

/// A cycle on `n ≥ 3` nodes with distinct weights.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn ring_graph(n: usize, seed: u64) -> WeightedGraph {
    assert!(n >= 3, "ring_graph requires at least three nodes");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = WeightedGraph::with_nodes(n);
    let mut weights = distinct_weights(n, &mut rng);
    for i in 0..n {
        g.add_edge(NodeId(i), NodeId((i + 1) % n), weights.pop().unwrap())
            .expect("ring edges are unique");
    }
    g
}

/// The complete graph on `n` nodes with distinct weights.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn complete_graph(n: usize, seed: u64) -> WeightedGraph {
    assert!(n > 0, "complete_graph requires at least one node");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = WeightedGraph::with_nodes(n);
    let mut weights = distinct_weights(n * (n - 1) / 2, &mut rng);
    for i in 0..n {
        for j in (i + 1)..n {
            g.add_edge(NodeId(i), NodeId(j), weights.pop().unwrap())
                .expect("complete graph edges are unique");
        }
    }
    g
}

/// A star: node 0 is the centre, connected to every other node.
///
/// The star maximizes Δ and is used for the asynchronous detection-time
/// experiments (whose bound is `O(Δ log³ n)`).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn star_graph(n: usize, seed: u64) -> WeightedGraph {
    assert!(n > 0, "star_graph requires at least one node");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = WeightedGraph::with_nodes(n);
    let mut weights = distinct_weights(n.saturating_sub(1), &mut rng);
    for i in 1..n {
        g.add_edge(NodeId(0), NodeId(i), weights.pop().unwrap())
            .expect("star edges are unique");
    }
    g
}

/// An `rows × cols` grid with distinct weights.
///
/// # Panics
///
/// Panics if `rows == 0` or `cols == 0`.
pub fn grid_graph(rows: usize, cols: usize, seed: u64) -> WeightedGraph {
    assert!(
        rows > 0 && cols > 0,
        "grid_graph requires positive dimensions"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rows * cols;
    let mut g = WeightedGraph::with_nodes(n);
    let m = rows * (cols - 1) + cols * (rows - 1);
    let mut weights = distinct_weights(m, &mut rng);
    let at = |r: usize, c: usize| NodeId(r * cols + c);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_edge(at(r, c), at(r, c + 1), weights.pop().unwrap())
                    .expect("grid edges are unique");
            }
            if r + 1 < rows {
                g.add_edge(at(r, c), at(r + 1, c), weights.pop().unwrap())
                    .expect("grid edges are unique");
            }
        }
    }
    g
}

/// A caterpillar: a spine path of `spine` nodes, each with `legs` leaf
/// children. Total nodes: `spine * (1 + legs)`.
///
/// # Panics
///
/// Panics if `spine == 0`.
pub fn caterpillar_graph(spine: usize, legs: usize, seed: u64) -> WeightedGraph {
    assert!(spine > 0, "caterpillar_graph requires a non-empty spine");
    let mut rng = StdRng::seed_from_u64(seed);
    let n = spine * (1 + legs);
    let mut g = WeightedGraph::with_nodes(n);
    let m = (spine - 1) + spine * legs;
    let mut weights = distinct_weights(m, &mut rng);
    for i in 0..spine - 1 {
        g.add_edge(NodeId(i), NodeId(i + 1), weights.pop().unwrap())
            .expect("spine edges are unique");
    }
    for s in 0..spine {
        for l in 0..legs {
            let leaf = spine + s * legs + l;
            g.add_edge(NodeId(s), NodeId(leaf), weights.pop().unwrap())
                .expect("leg edges are unique");
        }
    }
    g
}

/// A random connected graph with `n` nodes and (approximately) `m` edges:
/// a uniformly random spanning tree backbone plus random extra edges, with
/// distinct weights.
///
/// If `m < n − 1` the edge count is raised to `n − 1`; if `m` exceeds the
/// complete graph it is clamped.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn random_connected_graph(n: usize, m: usize, seed: u64) -> WeightedGraph {
    assert!(n > 0, "random_connected_graph requires at least one node");
    let mut rng = StdRng::seed_from_u64(seed);
    let max_m = n * n.saturating_sub(1) / 2;
    let m = m.clamp(n.saturating_sub(1), max_m.max(n.saturating_sub(1)));
    let mut g = WeightedGraph::with_nodes(n);
    let mut weights = distinct_weights(m, &mut rng);

    // random spanning tree backbone: random permutation, attach each node to a
    // random earlier node (a random recursive tree).
    let mut perm: Vec<usize> = (0..n).collect();
    perm.shuffle(&mut rng);
    for i in 1..n {
        let j = rng.gen_range(0..i);
        g.add_edge(NodeId(perm[i]), NodeId(perm[j]), weights.pop().unwrap())
            .expect("backbone edges are unique");
    }
    // extra edges
    let mut attempts = 0usize;
    while g.edge_count() < m && attempts < 50 * m + 100 {
        attempts += 1;
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v {
            continue;
        }
        if g.edge_between(NodeId(u), NodeId(v)).is_some() {
            continue;
        }
        let w = weights
            .pop()
            .unwrap_or_else(|| rng.gen_range(1u64..1_000_000) * 2 + 1);
        g.add_edge(NodeId(u), NodeId(v), w)
            .expect("checked for duplicates");
    }
    g
}

/// A random connected graph with scrambled (non-consecutive) node identities.
///
/// Useful for checking that algorithms only rely on identity *comparisons*,
/// never on identities being `0..n`.
pub fn random_graph_scrambled_ids(n: usize, m: usize, seed: u64) -> WeightedGraph {
    let base = random_connected_graph(n, m, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAD_BEEF);
    let mut ids: Vec<u64> = (0..n as u64).map(|i| i * 7 + 3).collect();
    ids.shuffle(&mut rng);
    let mut g = WeightedGraph::new();
    for &id in ids.iter().take(n) {
        g.add_node_with_id(id);
    }
    for e in base.edges() {
        g.add_edge(e.u, e.v, e.weight)
            .expect("copying unique edges");
    }
    g
}

/// A circulant "expander": every node `v` is joined to `v ± o (mod n)` for
/// each offset `o` in a set containing `1` plus `degree/2 − 1` random
/// distinct offsets in `2..=n/2`. Random circulant graphs of constant degree
/// have strong expansion and `O(log n)` diameter w.h.p., giving the
/// execution engine a low-diameter, regular workload family that stresses
/// cross-shard traffic (every shard boundary is crossed by long chords).
///
/// The resulting degree is `2 × offsets` (one less for the antipodal offset
/// on even `n`). Weights are distinct. The graph is connected because
/// offset `1` is always included.
///
/// # Panics
///
/// Panics if `n < 3` or `degree < 2`.
pub fn expander_graph(n: usize, degree: usize, seed: u64) -> WeightedGraph {
    assert!(n >= 3, "expander_graph requires at least three nodes");
    assert!(degree >= 2, "expander_graph requires degree >= 2");
    let mut rng = StdRng::seed_from_u64(seed);
    let wanted = (degree / 2).max(1);
    let mut candidates: Vec<usize> = (2..=n / 2).collect();
    candidates.shuffle(&mut rng);
    let mut offsets = vec![1usize];
    offsets.extend(candidates.into_iter().take(wanted.saturating_sub(1)));

    let edge_count: usize = offsets
        .iter()
        .map(|&o| if 2 * o == n { n / 2 } else { n })
        .sum();
    let mut weights = distinct_weights(edge_count, &mut rng);
    let mut g = WeightedGraph::with_nodes(n);
    for &o in &offsets {
        // the antipodal offset on even n yields each chord twice
        let span = if 2 * o == n { n / 2 } else { n };
        for v in 0..span {
            g.add_edge(NodeId(v), NodeId((v + o) % n), weights.pop().unwrap())
                .expect("circulant chords are unique");
        }
    }
    g
}

/// One cluster of the KMW skeleton: a contiguous node range at a depth,
/// optionally attached to a parent cluster exactly `delta` times larger.
struct KmwCluster {
    start: usize,
    size: usize,
    parent: Option<usize>,
}

/// The cluster-tree skeleton shared by [`kmw_cluster_tree`] and
/// [`kmw_hybrid_graph`]: a root cluster of `δ^levels` nodes at depth 0;
/// every depth-`d` cluster has `levels − d` child clusters, each `δ`
/// times smaller — the degree asymmetry of the CT_k cluster trees from
/// "A Breezing Proof of the KMW Bound" (arXiv:2002.06005). `max_depth`
/// trims the recursion (the hybrid stops one level early so its leaf
/// clusters keep `δ` nodes).
fn kmw_skeleton(levels: usize, delta: usize, max_depth: usize) -> Vec<KmwCluster> {
    let root_size = delta
        .checked_pow(levels as u32)
        .expect("kmw cluster tree too large");
    let mut clusters = vec![KmwCluster {
        start: 0,
        size: root_size,
        parent: None,
    }];
    let mut next = root_size;
    let mut frontier = vec![0usize];
    for d in 0..max_depth {
        let child_size = delta.pow((levels - d - 1) as u32);
        let mut new_frontier = Vec::new();
        for &ci in &frontier {
            for _ in 0..(levels - d) {
                clusters.push(KmwCluster {
                    start: next,
                    size: child_size,
                    parent: Some(ci),
                });
                next += child_size;
                new_frontier.push(clusters.len() - 1);
            }
        }
        frontier = new_frontier;
    }
    clusters
}

fn kmw_node_count(levels: usize, delta: usize, max_depth: usize) -> usize {
    let mut clusters = 1usize;
    let mut total = 0usize;
    for d in 0..=max_depth {
        total += clusters
            * delta
                .checked_pow((levels - d) as u32)
                .expect("kmw cluster tree too large");
        clusters *= levels - d;
    }
    total
}

/// Number of nodes of [`kmw_cluster_tree`]`(levels, delta, _)`.
pub fn kmw_cluster_tree_node_count(levels: usize, delta: usize) -> usize {
    kmw_node_count(levels, delta, levels)
}

/// Number of nodes of [`kmw_hybrid_graph`]`(levels, delta, _)`.
pub fn kmw_hybrid_node_count(levels: usize, delta: usize) -> usize {
    kmw_node_count(levels, delta, levels - 1)
}

fn build_kmw(
    levels: usize,
    delta: usize,
    seed: u64,
    max_depth: usize,
    hybrid: bool,
) -> WeightedGraph {
    let clusters = kmw_skeleton(levels, delta, max_depth);
    let n = clusters.last().map_or(0, |c| c.start + c.size);
    let mut m = 0usize;
    for c in &clusters {
        m += if hybrid && c.size >= 4 {
            c.size // ring interior
        } else {
            c.size.saturating_sub(1) // path interior
        };
        if let Some(p) = c.parent {
            m += clusters[p].size; // one gadget edge per parent node
        }
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut weights = distinct_weights(m, &mut rng);
    let mut g = WeightedGraph::with_nodes(n);
    for c in &clusters {
        if hybrid && c.size >= 4 {
            for i in 0..c.size {
                g.add_edge(
                    NodeId(c.start + i),
                    NodeId(c.start + (i + 1) % c.size),
                    weights.pop().unwrap(),
                )
                .expect("ring interiors are unique");
            }
        } else {
            for i in 0..c.size.saturating_sub(1) {
                g.add_edge(
                    NodeId(c.start + i),
                    NodeId(c.start + i + 1),
                    weights.pop().unwrap(),
                )
                .expect("path interiors are unique");
            }
        }
        if let Some(pi) = c.parent {
            let p = &clusters[pi];
            debug_assert_eq!(p.size, delta * c.size, "parent is exactly δ× larger");
            for j in 0..c.size {
                for i in 0..delta {
                    // contiguous groups realize the biregular (1, δ)
                    // gadget; the hybrid spreads each child's parents a
                    // stride of `c.size` apart so no two of them are
                    // interior-adjacent (triangle-freeness)
                    let off = if hybrid {
                        (j + i * c.size) % p.size
                    } else {
                        j * delta + i
                    };
                    g.add_edge(
                        NodeId(c.start + j),
                        NodeId(p.start + off),
                        weights.pop().unwrap(),
                    )
                    .expect("gadget edges are unique");
                }
            }
        }
    }
    g
}

/// A KMW cluster tree: the hard-instance family of the KMW lower bound
/// (Ω(√(log n / log log n)) for LOCAL-model verification-style problems),
/// in the simplified deterministic realization of the CT_k skeleton from
/// "A Breezing Proof of the KMW Bound" (arXiv:2002.06005).
///
/// The root cluster has `δ^levels` nodes; every depth-`d` cluster has
/// `levels − d` child clusters, each `δ` times smaller, down to
/// singleton leaves. Cluster interiors are paths (connectivity), and
/// each parent–child pair is joined by a biregular `(1, δ)` bipartite
/// gadget: every child node sees `δ` parent nodes, every parent node
/// exactly one node per child cluster — the degree asymmetry that makes
/// parent and child locally hard to distinguish. Weights are distinct
/// and seeded; the topology itself is deterministic in `(levels, delta)`.
///
/// # Panics
///
/// Panics if `levels == 0`, `delta < 2`, or the node count overflows.
pub fn kmw_cluster_tree(levels: usize, delta: usize, seed: u64) -> WeightedGraph {
    assert!(levels >= 1, "kmw_cluster_tree requires at least one level");
    assert!(delta >= 2, "kmw_cluster_tree requires delta >= 2");
    build_kmw(levels, delta, seed, levels, false)
}

/// The high-girth hybrid of [`kmw_cluster_tree`]: the same cluster-tree
/// skeleton trimmed one level early (leaf clusters keep `δ` nodes),
/// cluster interiors of size ≥ 4 upgraded from paths to rings, and the
/// `(1, δ)` gadgets spread so a child's `δ` parent neighbors sit a full
/// child-cluster-size stride apart. The result is triangle-free (girth
/// ≥ 4, pinned by a test) while keeping the hierarchy's degree asymmetry
/// — a step toward the high-girth G_k realizations the KMW bound needs.
///
/// # Panics
///
/// Panics if `levels < 2`, `delta < 3` (the stride argument needs it), or
/// the node count overflows.
pub fn kmw_hybrid_graph(levels: usize, delta: usize, seed: u64) -> WeightedGraph {
    assert!(levels >= 2, "kmw_hybrid_graph requires at least two levels");
    assert!(delta >= 3, "kmw_hybrid_graph requires delta >= 3");
    build_kmw(levels, delta, seed, levels - 1, true)
}

/// Distinct odd weights in random order (odd so that explicitly-chosen even
/// weights in tests can never collide with generated ones).
fn distinct_weights(count: usize, rng: &mut StdRng) -> Vec<u64> {
    let mut ws: Vec<u64> = (0..count as u64).map(|i| 2 * i + 1).collect();
    ws.shuffle(rng);
    ws
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn path_ring_star_shapes() {
        let p = path_graph(5, 1);
        assert_eq!((p.node_count(), p.edge_count(), p.max_degree()), (5, 4, 2));
        let r = ring_graph(5, 1);
        assert_eq!((r.node_count(), r.edge_count(), r.max_degree()), (5, 5, 2));
        let s = star_graph(5, 1);
        assert_eq!((s.node_count(), s.edge_count(), s.max_degree()), (5, 4, 4));
    }

    #[test]
    fn complete_graph_edge_count() {
        let g = complete_graph(7, 2);
        assert_eq!(g.edge_count(), 21);
        assert!(g.is_connected());
        assert!(g.has_distinct_weights());
    }

    #[test]
    fn grid_dimensions() {
        let g = grid_graph(3, 4, 9);
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_count(), 3 * 3 + 4 * 2);
        assert!(g.is_connected());
    }

    #[test]
    fn caterpillar_structure() {
        let g = caterpillar_graph(4, 3, 5);
        assert_eq!(g.node_count(), 16);
        assert_eq!(g.edge_count(), 3 + 12);
        assert!(g.is_connected());
        assert_eq!(g.degree(NodeId(15)), 1);
    }

    #[test]
    fn random_graph_is_connected_and_distinct() {
        for seed in 0..8 {
            let g = random_connected_graph(40, 100, seed);
            assert!(g.is_connected());
            assert!(g.has_distinct_weights() || g.edge_count() > 100);
            assert_eq!(g.node_count(), 40);
            assert!(g.edge_count() >= 39);
        }
    }

    #[test]
    fn random_graph_clamps_edge_count() {
        let g = random_connected_graph(5, 1000, 3);
        assert_eq!(g.edge_count(), 10);
        let g2 = random_connected_graph(5, 0, 3);
        assert_eq!(g2.edge_count(), 4);
    }

    #[test]
    fn generators_are_deterministic() {
        let a = random_connected_graph(20, 50, 77);
        let b = random_connected_graph(20, 50, 77);
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn scrambled_ids_are_distinct() {
        let g = random_graph_scrambled_ids(15, 30, 4);
        let mut ids: Vec<u64> = g.nodes().map(|v| g.id(v)).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 15);
        assert!(g.is_connected());
    }

    #[test]
    fn expander_is_connected_regular_and_low_diameter() {
        let g = expander_graph(200, 6, 3);
        assert_eq!(g.node_count(), 200);
        assert!(g.is_connected());
        assert!(g.has_distinct_weights());
        assert!(g.max_degree() <= 6);
        assert!(g.degree(NodeId(17)) >= 4, "circulants are near-regular");
        // 200 nodes, degree 6: an expander's diameter is far below n / 4
        assert!(g.diameter().unwrap() < 50);
        let g2 = expander_graph(200, 6, 3);
        assert_eq!(g.edges(), g2.edges(), "deterministic per seed");
    }

    #[test]
    fn expander_handles_even_antipodal_offset() {
        // n = 6, degree 4: offset 3 (= n/2) may be drawn; every edge unique
        for seed in 0..10 {
            let g = expander_graph(6, 4, seed);
            assert!(g.is_connected());
        }
    }

    #[test]
    fn kmw_cluster_tree_shape() {
        // levels 2, δ 3: root of 9, two depth-1 clusters of 3, two
        // singleton leaves — 17 nodes
        let g = kmw_cluster_tree(2, 3, 1);
        assert_eq!(g.node_count(), 17);
        assert_eq!(g.node_count(), kmw_cluster_tree_node_count(2, 3));
        assert!(g.is_connected());
        assert!(g.has_distinct_weights());
        // every depth-1 node sees δ root nodes plus interior/leaf edges
        assert!(g.degree(NodeId(9)) >= 3);
        let g3 = kmw_cluster_tree(3, 3, 1);
        assert_eq!(g3.node_count(), kmw_cluster_tree_node_count(3, 3));
        assert_eq!(kmw_cluster_tree_node_count(3, 3), 27 + 3 * 9 + 6 * 3 + 6);
        assert!(g3.is_connected());
    }

    #[test]
    fn kmw_generators_are_deterministic_and_seed_only_moves_weights() {
        let a = kmw_cluster_tree(3, 3, 7);
        let b = kmw_cluster_tree(3, 3, 7);
        assert_eq!(a.edges(), b.edges(), "same seed, identical graph");
        let c = kmw_cluster_tree(3, 3, 8);
        assert_eq!(a.edge_count(), c.edge_count());
        let ends = |g: &WeightedGraph| g.edges().iter().map(|e| (e.u, e.v)).collect::<Vec<_>>();
        assert_eq!(ends(&a), ends(&c), "topology is seed-independent");
        assert_ne!(
            a.edges(),
            c.edges(),
            "weights are seeded (distinct assignment)"
        );
    }

    #[test]
    fn kmw_hybrid_is_connected_and_triangle_free() {
        for levels in [2usize, 3, 4] {
            let g = kmw_hybrid_graph(levels, 3, 5);
            assert_eq!(g.node_count(), kmw_hybrid_node_count(levels, 3));
            assert!(g.is_connected());
            assert!(g.has_distinct_weights());
            for e in g.edges() {
                let u_adjacent: std::collections::HashSet<NodeId> = g.neighbors(e.u).collect();
                assert!(
                    !g.neighbors(e.v).any(|w| u_adjacent.contains(&w)),
                    "levels {levels}: edge ({:?},{:?}) closes a triangle",
                    e.u,
                    e.v
                );
            }
        }
    }

    #[test]
    fn kmw_diameter_tracks_cluster_depth() {
        // the biregular gadgets shortcut the interior paths, so the
        // diameter is set by the cluster hierarchy's depth — two hops per
        // level (down the gadget, across, back up), not by node count
        for levels in 2..=4 {
            let tree = kmw_cluster_tree(levels, 3, 2);
            assert_eq!(tree.diameter().unwrap(), 2 * levels, "tree levels={levels}");
            let hybrid = kmw_hybrid_graph(levels, 3, 2);
            assert_eq!(
                hybrid.diameter().unwrap(),
                2 * levels - 1,
                "hybrid levels={levels}"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        #[test]
        fn kmw_cluster_trees_connected_with_invariant_sizes(
            levels in 1usize..5,
            delta in 2usize..5,
            seed in 0u64..100,
        ) {
            let g = kmw_cluster_tree(levels, delta, seed);
            prop_assert_eq!(g.node_count(), kmw_cluster_tree_node_count(levels, delta));
            prop_assert!(g.is_connected());
            prop_assert!(g.has_distinct_weights());
            // size is a pure function of (levels, delta): another seed
            // builds the identical node set and edge skeleton
            let h = kmw_cluster_tree(levels, delta, seed ^ 0xABCD);
            prop_assert_eq!(g.node_count(), h.node_count());
            prop_assert_eq!(g.edge_count(), h.edge_count());
        }
    }

    #[test]
    fn single_node_generators() {
        assert_eq!(path_graph(1, 0).node_count(), 1);
        assert_eq!(star_graph(1, 0).edge_count(), 0);
        assert_eq!(complete_graph(1, 0).edge_count(), 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(20))]
        #[test]
        fn random_graphs_always_connected(n in 1usize..60, extra in 0usize..100, seed in 0u64..1000) {
            let g = random_connected_graph(n, n + extra, seed);
            prop_assert!(g.is_connected());
            prop_assert!(g.edge_count() >= n.saturating_sub(1));
        }
    }
}
