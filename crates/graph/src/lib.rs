//! # smst-graph
//!
//! Graph substrate for the reproduction of *"Fast and compact self-stabilizing
//! verification, computation, and fault detection of an MST"* (Korman, Kutten,
//! Masuzawa).
//!
//! This crate provides everything the distributed algorithms in the sibling
//! crates need from classical (centralized) graph theory:
//!
//! * [`WeightedGraph`] — an undirected, edge-weighted graph with per-node
//!   *port numbers*, matching the paper's network model (§2.1): each node knows
//!   its incident edges only through locally-unique port labels.
//! * [`weight`] — edge weights and the lexicographic *unique-weight*
//!   perturbation ω′ of §2.1 (footnote 1), which makes the MST unique while
//!   preserving "is `T` an MST?" for a *given* candidate tree `T`.
//! * [`generators`] — graph families used by the experiments (random connected
//!   graphs, paths, rings, grids, complete graphs, stars, caterpillars).
//! * [`blowup`] — the edge→path transformation of §9 used by the lower-bound
//!   experiment (Figures 10/11 of the paper).
//! * [`mst`] — reference (centralized) MST algorithms (Kruskal, Prim, Borůvka)
//!   and a union–find, used as ground truth by tests and benches.
//! * [`tree`] — rooted spanning-tree utilities (parent arrays, DFS orders,
//!   subtree sizes, distances).
//! * [`component`] — the distributed representation `H(G)` induced by per-node
//!   parent pointers ("components" in the paper's terminology, §2.1).
//! * [`fragment`] — fragments, laminar families and fragment hierarchies
//!   (Definition 5.1), shared by the marker and the verifier.
//!
//! # Quick example
//!
//! ```
//! use smst_graph::generators::random_connected_graph;
//! use smst_graph::mst::kruskal;
//!
//! let g = random_connected_graph(32, 80, 42);
//! let mst = kruskal(&g);
//! assert_eq!(mst.edges().len(), g.node_count() - 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blowup;
pub mod component;
pub mod error;
pub mod fragment;
pub mod generators;
pub mod graph;
pub mod mst;
pub mod tree;
pub mod weight;

pub use component::ComponentMap;
pub use error::GraphError;
pub use fragment::{Fragment, FragmentId, Hierarchy};
pub use graph::{EdgeId, NodeId, Port, WeightedGraph};
pub use tree::RootedTree;
pub use weight::{CompositeWeight, Weight};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, GraphError>;
