//! The distributed representation `H(G)` of a candidate subgraph (§2.1).
//!
//! In the paper, the network "stores" an object such as an MST by having each
//! node hold a *component* `c(v)`: a single pointer (port number) to one of
//! its neighbours, or no pointer. The subgraph `H(G)` induced by the
//! components contains an edge if and only if at least one endpoint points at
//! the other. A [`ComponentMap`] is exactly this per-node pointer table, plus
//! the operations the verifier needs: extracting `H(G)`, deciding whether it
//! is a spanning tree, and rooting it according to the paper's convention
//! (Example SP of §2.6).

use crate::error::GraphError;
use crate::graph::{EdgeId, NodeId, Port, WeightedGraph};
use crate::tree::RootedTree;
use crate::Result;

/// Per-node parent pointers representing a candidate subgraph distributively.
///
/// # Examples
///
/// ```
/// use smst_graph::{WeightedGraph, NodeId, ComponentMap};
///
/// let mut g = WeightedGraph::with_nodes(3);
/// g.add_edge(NodeId(0), NodeId(1), 1).unwrap();
/// g.add_edge(NodeId(1), NodeId(2), 2).unwrap();
/// // 1 and 2 point towards 0-side parents; 0 has no pointer (it is the root).
/// let mut c = ComponentMap::empty(3);
/// c.point_at(&g, NodeId(1), NodeId(0)).unwrap();
/// c.point_at(&g, NodeId(2), NodeId(1)).unwrap();
/// let tree = c.rooted_spanning_tree(&g).unwrap();
/// assert_eq!(tree.root(), NodeId(0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentMap {
    /// `pointer[v]` is the port at `v` through which `v` points at a
    /// neighbour, or `None` if `v` stores no pointer.
    pointer: Vec<Option<Port>>,
}

impl ComponentMap {
    /// A component map for `n` nodes with no pointers.
    pub fn empty(n: usize) -> Self {
        ComponentMap {
            pointer: vec![None; n],
        }
    }

    /// Builds the component map encoding a rooted tree: every non-root node
    /// points at its parent; the root stores no pointer.
    pub fn from_rooted_tree(g: &WeightedGraph, tree: &RootedTree) -> Self {
        let mut c = Self::empty(g.node_count());
        for v in g.nodes() {
            if let Some(p) = tree.parent(v) {
                let port = g
                    .port_to(v, p)
                    .expect("tree parent must be a graph neighbour");
                c.pointer[v.0] = Some(port);
            }
        }
        c
    }

    /// Number of nodes covered by the map.
    pub fn node_count(&self) -> usize {
        self.pointer.len()
    }

    /// The raw pointer (port) stored at `v`.
    pub fn pointer(&self, v: NodeId) -> Option<Port> {
        self.pointer[v.0]
    }

    /// Sets the pointer of `v` to the given port (or clears it).
    pub fn set_pointer(&mut self, v: NodeId, port: Option<Port>) {
        self.pointer[v.0] = port;
    }

    /// Makes `v` point at its neighbour `target`.
    ///
    /// # Errors
    ///
    /// Returns an error if `(v, target)` is not an edge of `g`.
    pub fn point_at(&mut self, g: &WeightedGraph, v: NodeId, target: NodeId) -> Result<()> {
        let port = g.port_to(v, target).ok_or(GraphError::UnknownPort {
            node: v.0,
            port: usize::MAX,
        })?;
        self.pointer[v.0] = Some(port);
        Ok(())
    }

    /// The node that `v` points at (if any, and if the pointer is a valid
    /// port of `v` in `g`).
    pub fn target(&self, g: &WeightedGraph, v: NodeId) -> Option<NodeId> {
        let port = self.pointer[v.0]?;
        g.neighbor_at_port(v, port).ok()
    }

    /// The set of edges of the induced subgraph `H(G)`: an edge is present if
    /// at least one endpoint points at the other (§2.1).
    pub fn induced_edges(&self, g: &WeightedGraph) -> Vec<EdgeId> {
        let mut present = vec![false; g.edge_count()];
        for v in g.nodes() {
            if let Some(port) = self.pointer[v.0] {
                if let Ok(e) = g.edge_at_port(v, port) {
                    present[e.0] = true;
                }
            }
        }
        present
            .iter()
            .enumerate()
            .filter(|&(_, &p)| p)
            .map(|(i, _)| EdgeId(i))
            .collect()
    }

    /// Decides whether `H(G)` is a spanning tree of `g`, and if so, roots it
    /// according to the paper's convention (Example SP of §2.6):
    ///
    /// * if there is a node with no pointer, that node is the root
    ///   (the paper observes there can be at most one such node in a correct
    ///   instance);
    /// * otherwise there must be two nodes pointing at each other, and the
    ///   one with the larger identity is chosen as root.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NotASpanningTree`] if the induced subgraph is not
    /// a spanning tree, or if the pointer structure violates the convention
    /// (e.g. several pointer-less nodes).
    pub fn rooted_spanning_tree(&self, g: &WeightedGraph) -> Result<RootedTree> {
        let n = g.node_count();
        if self.pointer.len() != n {
            return Err(GraphError::NotASpanningTree(
                "component map covers a different node set".into(),
            ));
        }
        let edges = self.induced_edges(g);
        if edges.len() != n.saturating_sub(1) {
            return Err(GraphError::NotASpanningTree(format!(
                "induced subgraph has {} edges, expected {}",
                edges.len(),
                n.saturating_sub(1)
            )));
        }
        let root = self.designated_root(g)?;
        RootedTree::from_edges(g, &edges, root)
    }

    /// The root designated by the pointer structure (see
    /// [`Self::rooted_spanning_tree`]).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NotASpanningTree`] if no valid root exists.
    pub fn designated_root(&self, g: &WeightedGraph) -> Result<NodeId> {
        let pointerless: Vec<NodeId> = g.nodes().filter(|&v| self.pointer[v.0].is_none()).collect();
        match pointerless.len() {
            1 => Ok(pointerless[0]),
            0 => {
                // find a mutual pair, root at the higher identity endpoint
                for v in g.nodes() {
                    if let Some(u) = self.target(g, v) {
                        if self.target(g, u) == Some(v) {
                            return Ok(if g.id(v) > g.id(u) { v } else { u });
                        }
                    }
                }
                Err(GraphError::NotASpanningTree(
                    "no pointer-less node and no mutually-pointing pair".into(),
                ))
            }
            k => Err(GraphError::NotASpanningTree(format!(
                "{k} nodes store no pointer"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> WeightedGraph {
        let mut g = WeightedGraph::with_nodes(n);
        for i in 0..n - 1 {
            g.add_edge(NodeId(i), NodeId(i + 1), (i + 1) as u64)
                .unwrap();
        }
        g
    }

    #[test]
    fn empty_map_has_no_edges() {
        let g = path_graph(4);
        let c = ComponentMap::empty(4);
        assert!(c.induced_edges(&g).is_empty());
        assert!(c.rooted_spanning_tree(&g).is_err());
    }

    #[test]
    fn chain_of_pointers_forms_spanning_tree() {
        let g = path_graph(4);
        let mut c = ComponentMap::empty(4);
        for i in 1..4 {
            c.point_at(&g, NodeId(i), NodeId(i - 1)).unwrap();
        }
        let t = c.rooted_spanning_tree(&g).unwrap();
        assert_eq!(t.root(), NodeId(0));
        assert_eq!(t.parent(NodeId(3)), Some(NodeId(2)));
    }

    #[test]
    fn mutual_pair_roots_at_higher_id() {
        let mut g = WeightedGraph::new();
        let a = g.add_node_with_id(10);
        let b = g.add_node_with_id(20);
        g.add_edge(a, b, 1).unwrap();
        let mut c = ComponentMap::empty(2);
        c.point_at(&g, a, b).unwrap();
        c.point_at(&g, b, a).unwrap();
        let t = c.rooted_spanning_tree(&g).unwrap();
        assert_eq!(t.root(), b);
    }

    #[test]
    fn two_pointerless_nodes_rejected() {
        let g = path_graph(3);
        let mut c = ComponentMap::empty(3);
        c.point_at(&g, NodeId(1), NodeId(0)).unwrap();
        // nodes 0 and 2 have no pointer and only 1 induced edge -> not spanning
        assert!(c.rooted_spanning_tree(&g).is_err());
        // make induced edges count right but still two roots
        c.point_at(&g, NodeId(1), NodeId(2)).unwrap();
        c.set_pointer(NodeId(0), None);
        assert!(c.rooted_spanning_tree(&g).is_err());
    }

    #[test]
    fn from_rooted_tree_round_trips() {
        let g = path_graph(5);
        let edges: Vec<EdgeId> = (0..4).map(EdgeId).collect();
        let t = RootedTree::from_edges(&g, &edges, NodeId(2)).unwrap();
        let c = ComponentMap::from_rooted_tree(&g, &t);
        let t2 = c.rooted_spanning_tree(&g).unwrap();
        assert_eq!(t2.root(), NodeId(2));
        for v in g.nodes() {
            assert_eq!(t2.parent(v), t.parent(v));
        }
    }

    #[test]
    fn target_resolves_ports() {
        let g = path_graph(3);
        let mut c = ComponentMap::empty(3);
        c.point_at(&g, NodeId(1), NodeId(2)).unwrap();
        assert_eq!(c.target(&g, NodeId(1)), Some(NodeId(2)));
        assert_eq!(c.target(&g, NodeId(0)), None);
    }

    #[test]
    fn point_at_non_neighbor_fails() {
        let g = path_graph(4);
        let mut c = ComponentMap::empty(4);
        assert!(c.point_at(&g, NodeId(0), NodeId(3)).is_err());
    }

    #[test]
    fn induced_edges_counts_one_sided_pointers_once() {
        let g = path_graph(3);
        let mut c = ComponentMap::empty(3);
        c.point_at(&g, NodeId(0), NodeId(1)).unwrap();
        c.point_at(&g, NodeId(1), NodeId(0)).unwrap();
        assert_eq!(c.induced_edges(&g).len(), 1);
    }
}
