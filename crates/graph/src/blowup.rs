//! The edge→path blow-up transformation of §9 (Figures 10 and 11).
//!
//! The lower-bound proof of the paper transforms a graph `G` (carrying a
//! candidate subgraph `H(G)` represented by per-node components) into a graph
//! `G′` in which every edge `(u, v)` of `G` is replaced by a simple path of
//! `2τ + 2` nodes carrying the original edge's weight on a single *heavy*
//! path edge (all other path edges have weight 1). The path nodes' components
//! are oriented so that `H(G′)` is a spanning tree of `G′` which is an MST
//! **iff** `H(G)` is an MST of `G`. Because the informative weight now sits
//! Θ(τ) hops away from both original endpoints, a verifier that runs fewer
//! than `τ` rounds with small labels cannot distinguish correct from
//! incorrect instances — this is the engine of the Ω(log n) time lower bound
//! (Lemma 9.1) and of the `fig_lowerbound` experiment.
//!
//! **Deviation from the paper's text.** §9 places the original weight on the
//! last path edge `(x_{2τ+1}, x_{2τ+2})` while orienting the components of a
//! non-tree path so that the interior nodes split half towards each endpoint,
//! omitting the *middle* path edge from `H(G′)`. For minimality to be
//! preserved, the edge omitted from `H(G′)` must be the weight-carrying one
//! (its fundamental cycle is the blown-up image of the original fundamental
//! cycle); we therefore place the original weight on the **middle** path edge
//! `(x_{τ+1}, x_{τ+2})` — the one the split orientation omits. This keeps all
//! three properties Lemma 9.1 relies on: `H(G′)` is a spanning tree, the MST
//! property is preserved in both directions, and the informative weight is
//! `τ` hops from either endpoint.

use crate::component::ComponentMap;
use crate::graph::{NodeId, WeightedGraph};
use crate::tree::RootedTree;
use std::collections::HashSet;

/// The result of blowing up a graph: the new graph, its distributed candidate
/// representation, and the mapping from new nodes back to original nodes
/// (`None` for the interior path nodes added by the transformation).
#[derive(Debug, Clone)]
pub struct BlowupResult {
    /// The transformed graph `G′`.
    pub graph: WeightedGraph,
    /// The per-node components representing `H(G′)`.
    pub components: ComponentMap,
    /// For each node of `G′`, the original node of `G` it corresponds to
    /// (`None` for interior path nodes).
    pub original: Vec<Option<NodeId>>,
}

/// Applies the §9 transformation with parameter `τ` to a graph and a rooted
/// candidate tree.
///
/// Every original node keeps its identity; interior path nodes get fresh
/// identities above the original range. For an edge `(u, v)` of `G` with
/// `ID(u) < ID(v)`, the path runs `u = x₁, x₂, …, x_{2τ+2} = v`; the middle
/// edge `(x_{τ+1}, x_{τ+2})` carries the original weight `ω(u, v)` and every
/// other path edge has weight 1 (see the module documentation for why the
/// heavy edge is the middle one rather than the last one).
///
/// Components (Figures 10/11):
/// * if `(u, v)` is a tree edge with, say, `u` pointing at `v` in the rooted
///   candidate tree, then `x₁, …, x_{2τ+1}` all point "forward" towards `v`,
///   so the whole path belongs to `H(G′)`;
/// * if `(u, v)` is a non-tree edge, then `x₂, …, x_{τ+1}` point back towards
///   `u` and `x_{τ+2}, …, x_{2τ+1}` point forward towards `v`, so the path
///   contributes every edge except the heavy middle one. The fundamental
///   cycle of that missing heavy edge in `H(G′)` is the blown-up image of the
///   fundamental cycle of `(u, v)` in `H(G)`, which is what preserves the MST
///   property in both directions.
///
/// # Panics
///
/// Panics if `tau == 0`.
pub fn blowup(g: &WeightedGraph, tree: &RootedTree, tau: usize) -> BlowupResult {
    assert!(tau > 0, "blowup requires τ ≥ 1");
    let n = g.node_count();
    let mut out = WeightedGraph::new();
    let mut original = Vec::new();
    // copy original nodes with their identities
    for v in g.nodes() {
        out.add_node_with_id(g.id(v));
        original.push(Some(v));
    }
    let mut next_id: u64 = g.nodes().map(|v| g.id(v)).max().unwrap_or(0) + 1;
    let tree_edges: HashSet<_> = tree.edges().into_iter().collect();

    let mut pointers: Vec<Option<NodeId>> = vec![None; n];
    for v in g.nodes() {
        pointers[v.0] = tree.parent(v);
    }

    let mut comp_targets: Vec<Option<NodeId>> = vec![None; n];
    // interior nodes appended later; collect (node, target) pairs
    let mut interior_targets: Vec<(NodeId, NodeId)> = Vec::new();

    for (eid, edge) in g.edge_entries() {
        // orient the path from the lower-identity endpoint to the higher one
        let (u, v) = if g.id(edge.u) < g.id(edge.v) {
            (edge.u, edge.v)
        } else {
            (edge.v, edge.u)
        };
        // build interior nodes x₂ … x_{2τ+1}
        let mut path = vec![u];
        for _ in 0..(2 * tau) {
            let x = out.add_node_with_id(next_id);
            next_id += 1;
            original.push(None);
            path.push(x);
        }
        path.push(v);
        // edges along the path; the middle edge (index τ) carries the weight
        let last = path.len() - 1;
        for i in 0..last {
            let w = if i == tau { edge.weight } else { 1 };
            out.add_edge(path[i], path[i + 1], w)
                .expect("blow-up path edges are fresh");
        }
        let is_tree_edge = tree_edges.contains(&eid);
        if is_tree_edge {
            // the child endpoint points towards the parent endpoint in the
            // original tree; orient the whole path that way.
            let (from, to) = if tree.parent(edge.u) == Some(edge.v) {
                (edge.u, edge.v)
            } else {
                (edge.v, edge.u)
            };
            // re-orient path so it runs from `from` to `to`
            let oriented: Vec<NodeId> = if path[0] == from {
                path.clone()
            } else {
                path.iter().rev().copied().collect()
            };
            for i in 0..oriented.len() - 1 {
                let node = oriented[i];
                let target = oriented[i + 1];
                if node.0 < n {
                    comp_targets[node.0] = Some(target);
                } else {
                    interior_targets.push((node, target));
                }
            }
            let _ = to;
        } else {
            // non-tree edge: interior nodes split, pointing away from the
            // heavy edge (x_{τ+1} towards u-side, x_{τ+2} towards v-side),
            // exactly as in Figure 11. Endpoints keep their tree pointers.
            for i in 1..=tau {
                interior_targets.push((path[i], path[i - 1]));
            }
            for i in (tau + 1)..=(2 * tau) {
                interior_targets.push((path[i], path[i + 1]));
            }
        }
    }

    let mut components = ComponentMap::empty(out.node_count());
    for v in g.nodes() {
        if let Some(target) = comp_targets[v.0] {
            components
                .point_at(&out, v, target)
                .expect("blow-up components point along path edges");
        }
    }
    for (node, target) in interior_targets {
        components
            .point_at(&out, node, target)
            .expect("blow-up components point along path edges");
    }

    BlowupResult {
        graph: out,
        components,
        original,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::random_connected_graph;
    use crate::mst::{is_mst, kruskal};
    use proptest::prelude::*;

    fn mst_tree(g: &WeightedGraph) -> RootedTree {
        kruskal(g).rooted_at(g, NodeId(0)).unwrap()
    }

    #[test]
    fn node_and_edge_counts() {
        let g = random_connected_graph(6, 9, 1);
        let t = mst_tree(&g);
        let tau = 2;
        let b = blowup(&g, &t, tau);
        assert_eq!(
            b.graph.node_count(),
            g.node_count() + g.edge_count() * 2 * tau
        );
        assert_eq!(b.graph.edge_count(), g.edge_count() * (2 * tau + 1));
    }

    #[test]
    fn blowup_of_mst_instance_is_mst_instance() {
        let g = random_connected_graph(8, 16, 2);
        let t = mst_tree(&g);
        let b = blowup(&g, &t, 2);
        let tree = b
            .components
            .rooted_spanning_tree(&b.graph)
            .expect("blow-up of a spanning tree yields a spanning tree");
        assert!(is_mst(&b.graph, &tree.edges()));
    }

    #[test]
    fn blowup_of_non_mst_instance_is_not_mst() {
        // build a spanning tree that is NOT minimal: swap a tree edge for a
        // heavier non-tree edge closing the same cycle.
        let mut g = WeightedGraph::with_nodes(4);
        let e01 = g.add_edge(NodeId(0), NodeId(1), 2).unwrap();
        let e12 = g.add_edge(NodeId(1), NodeId(2), 4).unwrap();
        let e23 = g.add_edge(NodeId(2), NodeId(3), 6).unwrap();
        let e30 = g.add_edge(NodeId(3), NodeId(0), 100).unwrap();
        let _ = e23;
        // tree {e01, e12, e30} is spanning but not minimal
        let bad_tree = RootedTree::from_edges(&g, &[e01, e12, e30], NodeId(0)).unwrap();
        assert!(!is_mst(&g, &[e01, e12, e30]));
        let b = blowup(&g, &bad_tree, 2);
        let tree = b.components.rooted_spanning_tree(&b.graph).unwrap();
        assert!(!is_mst(&b.graph, &tree.edges()));
    }

    #[test]
    fn original_mapping_covers_exactly_original_nodes() {
        let g = random_connected_graph(5, 8, 3);
        let t = mst_tree(&g);
        let b = blowup(&g, &t, 1);
        let originals: Vec<NodeId> = b.original.iter().flatten().copied().collect();
        assert_eq!(originals.len(), 5);
        for v in g.nodes() {
            assert!(originals.contains(&v));
        }
    }

    #[test]
    fn heavy_edge_is_far_from_low_id_endpoint() {
        let g = random_connected_graph(5, 8, 4);
        let t = mst_tree(&g);
        let tau = 3;
        let b = blowup(&g, &t, tau);
        // every original edge's weight now appears only at hop distance
        // 2τ+1 from its low-identity endpoint along the replacing path
        for edge in g.edges() {
            let (u, v) = if g.id(edge.u) < g.id(edge.v) {
                (edge.u, edge.v)
            } else {
                (edge.v, edge.u)
            };
            let d = b.graph.hop_distance(u, v).unwrap();
            assert_eq!(d, 2 * tau + 1);
        }
    }

    #[test]
    #[should_panic(expected = "τ ≥ 1")]
    fn zero_tau_panics() {
        let g = random_connected_graph(4, 5, 5);
        let t = mst_tree(&g);
        let _ = blowup(&g, &t, 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn mst_property_is_preserved(n in 3usize..10, seed in 0u64..100, tau in 1usize..4) {
            let g = random_connected_graph(n, 2 * n, seed);
            let t = mst_tree(&g);
            let b = blowup(&g, &t, tau);
            let tree = b.components.rooted_spanning_tree(&b.graph).unwrap();
            prop_assert!(is_mst(&b.graph, &tree.edges()));
        }
    }
}
