//! Reference (centralized) minimum-spanning-tree algorithms.
//!
//! These are the ground truth the tests and benches compare the distributed
//! algorithms against. Three classical algorithms are provided —
//! [`kruskal`], [`prim`] and [`boruvka`] — all operating on the composite
//! (perturbed, unique) weights of [`crate::weight`], so they return the same
//! unique MST. [`is_mst`] checks a candidate edge set using the cut/cycle
//! properties.

mod boruvka;
mod kruskal;
mod prim;
mod union_find;

pub use boruvka::{boruvka, boruvka_phase_count};
pub use kruskal::kruskal;
pub use prim::prim;
pub use union_find::UnionFind;

use crate::graph::{EdgeId, WeightedGraph};
use crate::tree::RootedTree;
use crate::NodeId;
use std::collections::HashSet;

/// The result of an MST computation: the tree edge set plus its total weight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MstResult {
    edges: Vec<EdgeId>,
    total_weight: u128,
}

impl MstResult {
    pub(crate) fn new(g: &WeightedGraph, mut edges: Vec<EdgeId>) -> Self {
        edges.sort_unstable();
        let total_weight = g.total_weight(edges.iter().copied());
        MstResult {
            edges,
            total_weight,
        }
    }

    /// The MST edges, sorted by edge id.
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// The total raw weight of the MST.
    pub fn total_weight(&self) -> u128 {
        self.total_weight
    }

    /// Converts the edge set into a [`RootedTree`] rooted at the given node.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::GraphError::NotASpanningTree`] if the edge set is
    /// not spanning (e.g. if the input graph was disconnected).
    pub fn rooted_at(&self, g: &WeightedGraph, root: NodeId) -> crate::Result<RootedTree> {
        RootedTree::from_edges(g, &self.edges, root)
    }

    /// Returns `true` if the given edge belongs to the MST.
    pub fn contains(&self, e: EdgeId) -> bool {
        self.edges.binary_search(&e).is_ok()
    }
}

/// Checks whether `candidate` is a minimum spanning tree of `g`.
///
/// The check uses the *cycle property* under the composite weights ω′ of
/// §2.1: a spanning tree `T` is an MST iff every non-tree edge `e = (u, v)` is
/// at least as heavy (under ω′ with the indicator of `T`) as every tree edge on
/// the `u`–`v` path in `T`. This matches the verification semantics of the
/// paper exactly (it is agnostic to how ties outside `T` are broken).
pub fn is_mst(g: &WeightedGraph, candidate: &[EdgeId]) -> bool {
    let n = g.node_count();
    if n == 0 {
        return true;
    }
    if candidate.len() != n - 1 {
        return false;
    }
    let tree = match RootedTree::from_edges(g, candidate, NodeId(0)) {
        Ok(t) => t,
        Err(_) => return false,
    };
    let in_tree: HashSet<EdgeId> = candidate.iter().copied().collect();
    for (eid, edge) in g.edge_entries() {
        if in_tree.contains(&eid) {
            continue;
        }
        let w_non_tree = g.composite_weight(eid, false);
        // every tree edge on the cycle closed by `eid` must be lighter
        let path_ok = cycle_edges(&tree, edge.u, edge.v)
            .into_iter()
            .all(|te| g.composite_weight(te, true) < w_non_tree);
        if !path_ok {
            return false;
        }
    }
    true
}

/// The tree edges on the unique tree path between `u` and `v`.
fn cycle_edges(tree: &RootedTree, u: NodeId, v: NodeId) -> Vec<EdgeId> {
    let (mut a, mut b) = (u, v);
    let mut edges = Vec::new();
    let mut da = tree.depth(a);
    let mut db = tree.depth(b);
    while da > db {
        edges.push(tree.parent_edge(a).expect("deeper node has a parent"));
        a = tree.parent(a).expect("deeper node has a parent");
        da -= 1;
    }
    while db > da {
        edges.push(tree.parent_edge(b).expect("deeper node has a parent"));
        b = tree.parent(b).expect("deeper node has a parent");
        db -= 1;
    }
    while a != b {
        edges.push(tree.parent_edge(a).expect("non-root has a parent"));
        edges.push(tree.parent_edge(b).expect("non-root has a parent"));
        a = tree.parent(a).expect("non-root has a parent");
        b = tree.parent(b).expect("non-root has a parent");
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{complete_graph, random_connected_graph};
    use proptest::prelude::*;

    #[test]
    fn three_algorithms_agree_on_small_graph() {
        let g = complete_graph(6, 7);
        let k = kruskal(&g);
        let p = prim(&g);
        let b = boruvka(&g);
        assert_eq!(k.edges(), p.edges());
        assert_eq!(k.edges(), b.edges());
        assert_eq!(k.total_weight(), p.total_weight());
    }

    #[test]
    fn is_mst_accepts_kruskal_output() {
        let g = random_connected_graph(20, 50, 3);
        let mst = kruskal(&g);
        assert!(is_mst(&g, mst.edges()));
    }

    #[test]
    fn is_mst_rejects_non_spanning_set() {
        let g = random_connected_graph(10, 20, 5);
        let mst = kruskal(&g);
        let mut edges = mst.edges().to_vec();
        edges.pop();
        assert!(!is_mst(&g, &edges));
    }

    #[test]
    fn is_mst_rejects_heavier_spanning_tree() {
        // square with a heavy diagonal swap
        let mut g = WeightedGraph::with_nodes(4);
        let e01 = g.add_edge(NodeId(0), NodeId(1), 1).unwrap();
        let e12 = g.add_edge(NodeId(1), NodeId(2), 2).unwrap();
        let e23 = g.add_edge(NodeId(2), NodeId(3), 3).unwrap();
        let e30 = g.add_edge(NodeId(3), NodeId(0), 100).unwrap();
        assert!(is_mst(&g, &[e01, e12, e23]));
        assert!(!is_mst(&g, &[e01, e12, e30]));
    }

    #[test]
    fn mst_result_contains_and_root() {
        let g = complete_graph(5, 11);
        let mst = kruskal(&g);
        for &e in mst.edges() {
            assert!(mst.contains(e));
        }
        let tree = mst.rooted_at(&g, NodeId(2)).unwrap();
        assert_eq!(tree.root(), NodeId(2));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn algorithms_agree_on_random_graphs(n in 2usize..24, seed in 0u64..500) {
            let m = (n * (n.saturating_sub(1)) / 2).min(3 * n);
            let g = random_connected_graph(n, m, seed);
            let k = kruskal(&g);
            let p = prim(&g);
            let b = boruvka(&g);
            prop_assert_eq!(k.edges(), p.edges());
            prop_assert_eq!(k.edges(), b.edges());
            prop_assert!(is_mst(&g, k.edges()));
        }

        #[test]
        fn swapping_an_edge_breaks_minimality_or_equals(n in 4usize..16, seed in 0u64..200) {
            let g = random_connected_graph(n, 3 * n, seed);
            let mst = kruskal(&g);
            // replace a tree edge by a non-tree edge that closes a cycle over it:
            // the result is either not spanning or not minimal.
            let non_tree: Vec<EdgeId> = g
                .edge_entries()
                .map(|(e, _)| e)
                .filter(|e| !mst.contains(*e))
                .collect();
            if let Some(&extra) = non_tree.first() {
                let mut edges = mst.edges().to_vec();
                edges[0] = extra;
                // either it is no longer a spanning tree, or it is a spanning tree
                // but strictly heavier; in both cases is_mst must not hold unless
                // it accidentally reconstructs an MST of equal weight, which the
                // unique composite ordering forbids for a *different* edge set.
                prop_assert!(!is_mst(&g, &edges) || edges == mst.edges());
            }
        }
    }
}
