//! Borůvka's algorithm over the composite (unique) edge weights.
//!
//! Borůvka's algorithm is the closest centralized analogue of the GHS /
//! SYNC_MST fragment-merging process: every phase, each fragment selects its
//! minimum outgoing edge and all selected edges are added simultaneously.
//! It is used by tests to cross-validate the fragment hierarchies that the
//! distributed construction produces.

use super::union_find::UnionFind;
use super::MstResult;
use crate::graph::{EdgeId, WeightedGraph};
use crate::weight::CompositeWeight;

/// Computes the minimum spanning forest of `g` by Borůvka phases.
///
/// Relies on unique (composite) edge weights to avoid cycles when merging.
pub fn boruvka(g: &WeightedGraph) -> MstResult {
    let n = g.node_count();
    let mut uf = UnionFind::new(n);
    let mut chosen: Vec<EdgeId> = Vec::new();
    if n == 0 {
        return MstResult::new(g, chosen);
    }
    loop {
        // cheapest outgoing edge per component
        let mut best: Vec<Option<(CompositeWeight, EdgeId)>> = vec![None; n];
        for (eid, edge) in g.edge_entries() {
            let (cu, cv) = (uf.find(edge.u.0), uf.find(edge.v.0));
            if cu == cv {
                continue;
            }
            let w = g.composite_weight(eid, false);
            for c in [cu, cv] {
                if best[c].is_none_or(|(bw, _)| w < bw) {
                    best[c] = Some((w, eid));
                }
            }
        }
        let mut merged_any = false;
        for entry in best.iter().flatten() {
            let edge = g.edge(entry.1);
            if uf.union(edge.u.0, edge.v.0) {
                chosen.push(entry.1);
                merged_any = true;
            }
        }
        if !merged_any {
            break;
        }
    }
    MstResult::new(g, chosen)
}

/// The number of Borůvka phases needed until no further merge happens.
///
/// For a connected graph this is `O(log n)`; the paper's hierarchy height
/// bound (`ℓ ≤ ⌈log n⌉`) is the distributed analogue of this fact.
pub fn boruvka_phase_count(g: &WeightedGraph) -> usize {
    let n = g.node_count();
    let mut uf = UnionFind::new(n);
    let mut phases = 0;
    if n == 0 {
        return 0;
    }
    loop {
        let mut best: Vec<Option<(CompositeWeight, EdgeId)>> = vec![None; n];
        for (eid, edge) in g.edge_entries() {
            let (cu, cv) = (uf.find(edge.u.0), uf.find(edge.v.0));
            if cu == cv {
                continue;
            }
            let w = g.composite_weight(eid, false);
            for c in [cu, cv] {
                if best[c].is_none_or(|(bw, _)| w < bw) {
                    best[c] = Some((w, eid));
                }
            }
        }
        let mut merged_any = false;
        for entry in best.iter().flatten() {
            let edge = g.edge(entry.1);
            if uf.union(edge.u.0, edge.v.0) {
                merged_any = true;
            }
        }
        if !merged_any {
            break;
        }
        phases += 1;
    }
    phases
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{random_connected_graph, ring_graph};
    use crate::mst::kruskal;

    #[test]
    fn matches_kruskal_on_ring() {
        let g = ring_graph(10, 4);
        assert_eq!(boruvka(&g).edges(), kruskal(&g).edges());
    }

    #[test]
    fn matches_kruskal_on_random_graphs() {
        for seed in 0..10 {
            let g = random_connected_graph(25, 70, seed + 100);
            assert_eq!(boruvka(&g).edges(), kruskal(&g).edges());
        }
    }

    #[test]
    fn phase_count_is_logarithmic() {
        for n in [2usize, 4, 16, 64, 128] {
            let g = random_connected_graph(n, 3 * n, 7);
            let phases = boruvka_phase_count(&g);
            assert!(
                phases <= (n as f64).log2().ceil() as usize + 1,
                "n={n}: {phases} phases exceeds log bound"
            );
            assert!(phases >= 1);
        }
    }

    #[test]
    fn empty_graph_zero_phases() {
        let g = WeightedGraph::new();
        assert_eq!(boruvka_phase_count(&g), 0);
        assert!(boruvka(&g).edges().is_empty());
    }
}
