//! Kruskal's algorithm over the composite (unique) edge weights.

use super::union_find::UnionFind;
use super::MstResult;
use crate::graph::{EdgeId, WeightedGraph};

/// Computes the minimum spanning forest of `g` by Kruskal's algorithm.
///
/// Edges are ordered by the composite weight ω′ (raw weight, then endpoint
/// identities), so the result is the unique MST the paper's algorithms
/// construct. On a disconnected graph the result is the minimum spanning
/// forest.
///
/// # Examples
///
/// ```
/// use smst_graph::generators::complete_graph;
/// use smst_graph::mst::kruskal;
///
/// let g = complete_graph(5, 1);
/// let mst = kruskal(&g);
/// assert_eq!(mst.edges().len(), 4);
/// ```
pub fn kruskal(g: &WeightedGraph) -> MstResult {
    let mut order: Vec<EdgeId> = g.edge_entries().map(|(e, _)| e).collect();
    order.sort_by_key(|&e| g.composite_weight(e, false));
    let mut uf = UnionFind::new(g.node_count());
    let mut chosen = Vec::with_capacity(g.node_count().saturating_sub(1));
    for e in order {
        let edge = g.edge(e);
        if uf.union(edge.u.0, edge.v.0) {
            chosen.push(e);
        }
    }
    MstResult::new(g, chosen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{path_graph, random_connected_graph};
    use crate::NodeId;

    #[test]
    fn path_graph_mst_is_the_path() {
        let g = path_graph(6, 9);
        let mst = kruskal(&g);
        assert_eq!(mst.edges().len(), 5);
        assert_eq!(
            mst.total_weight(),
            g.total_weight(mst.edges().iter().copied())
        );
    }

    #[test]
    fn picks_light_edges() {
        let mut g = WeightedGraph::with_nodes(3);
        let cheap1 = g.add_edge(NodeId(0), NodeId(1), 1).unwrap();
        let cheap2 = g.add_edge(NodeId(1), NodeId(2), 2).unwrap();
        let heavy = g.add_edge(NodeId(0), NodeId(2), 10).unwrap();
        let mst = kruskal(&g);
        assert!(mst.contains(cheap1) && mst.contains(cheap2));
        assert!(!mst.contains(heavy));
    }

    #[test]
    fn handles_equal_weights_deterministically() {
        let mut g = WeightedGraph::with_nodes(4);
        for i in 0..3 {
            g.add_edge(NodeId(i), NodeId(i + 1), 5).unwrap();
        }
        g.add_edge(NodeId(0), NodeId(3), 5).unwrap();
        let a = kruskal(&g);
        let b = kruskal(&g);
        assert_eq!(a.edges(), b.edges());
        assert_eq!(a.edges().len(), 3);
    }

    #[test]
    fn disconnected_graph_gives_forest() {
        let mut g = WeightedGraph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1), 1).unwrap();
        g.add_edge(NodeId(2), NodeId(3), 1).unwrap();
        let mst = kruskal(&g);
        assert_eq!(mst.edges().len(), 2);
    }

    #[test]
    fn mst_weight_is_minimal_by_exhaustion() {
        // exhaustively check on a small random graph that no spanning tree is lighter
        let g = random_connected_graph(6, 10, 17);
        let mst = kruskal(&g);
        let edges: Vec<EdgeId> = g.edge_entries().map(|(e, _)| e).collect();
        let n = g.node_count();
        let mut best = u128::MAX;
        // enumerate all (m choose n-1) subsets
        let m = edges.len();
        for mask in 0u32..(1 << m) {
            if mask.count_ones() as usize != n - 1 {
                continue;
            }
            let subset: Vec<EdgeId> = (0..m)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| edges[i])
                .collect();
            if crate::tree::RootedTree::from_edges(&g, &subset, NodeId(0)).is_ok() {
                best = best.min(g.total_weight(subset.iter().copied()));
            }
        }
        assert_eq!(mst.total_weight(), best);
    }
}
