//! A union–find (disjoint-set) structure with union by rank and path
//! compression.

/// Disjoint-set forest over dense indices `0..n`.
///
/// # Examples
///
/// ```
/// use smst_graph::mst::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// assert!(uf.union(0, 1));
/// assert!(uf.union(2, 3));
/// assert!(!uf.same(0, 2));
/// assert!(uf.union(1, 3));
/// assert!(uf.same(0, 2));
/// assert_eq!(uf.component_count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u32>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` if the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// The representative of `x`'s set.
    ///
    /// # Panics
    ///
    /// Panics if `x >= len()`.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // path compression
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets containing `x` and `y`.
    ///
    /// Returns `true` if the sets were distinct (a merge happened).
    pub fn union(&mut self, x: usize, y: usize) -> bool {
        let (rx, ry) = (self.find(x), self.find(y));
        if rx == ry {
            return false;
        }
        let (hi, lo) = if self.rank[rx] >= self.rank[ry] {
            (rx, ry)
        } else {
            (ry, rx)
        };
        self.parent[lo] = hi;
        if self.rank[hi] == self.rank[lo] {
            self.rank[hi] += 1;
        }
        self.components -= 1;
        true
    }

    /// `true` if `x` and `y` are in the same set.
    pub fn same(&mut self, x: usize, y: usize) -> bool {
        self.find(x) == self.find(y)
    }

    /// Number of disjoint sets.
    pub fn component_count(&self) -> usize {
        self.components
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn singletons_are_disjoint() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.component_count(), 5);
        for i in 0..5 {
            for j in 0..5 {
                assert_eq!(uf.same(i, j), i == j);
            }
        }
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(6);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2));
        assert_eq!(uf.component_count(), 4);
    }

    #[test]
    fn empty_and_len() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        let uf2 = UnionFind::new(3);
        assert_eq!(uf2.len(), 3);
        assert!(!uf2.is_empty());
    }

    proptest! {
        #[test]
        fn union_find_matches_naive_partition(ops in proptest::collection::vec((0usize..20, 0usize..20), 0..80)) {
            let n = 20;
            let mut uf = UnionFind::new(n);
            // naive: component label per element
            let mut label: Vec<usize> = (0..n).collect();
            for (a, b) in ops {
                uf.union(a, b);
                let (la, lb) = (label[a], label[b]);
                if la != lb {
                    for l in label.iter_mut() {
                        if *l == lb { *l = la; }
                    }
                }
            }
            for i in 0..n {
                for j in 0..n {
                    prop_assert_eq!(uf.same(i, j), label[i] == label[j]);
                }
            }
            let mut labels: Vec<usize> = label.clone();
            labels.sort_unstable();
            labels.dedup();
            prop_assert_eq!(uf.component_count(), labels.len());
        }
    }
}
