//! Prim's algorithm over the composite (unique) edge weights.

use super::MstResult;
use crate::graph::{EdgeId, NodeId, WeightedGraph};
use crate::weight::CompositeWeight;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Computes the minimum spanning forest of `g` by Prim's algorithm.
///
/// Equivalent to [`super::kruskal`] (same unique MST under the composite
/// weights); provided as an independent cross-check and for benchmarking the
/// centralized baseline.
pub fn prim(g: &WeightedGraph) -> MstResult {
    let n = g.node_count();
    let mut in_tree = vec![false; n];
    let mut chosen: Vec<EdgeId> = Vec::with_capacity(n.saturating_sub(1));
    let mut heap: BinaryHeap<Reverse<(CompositeWeight, usize, usize)>> = BinaryHeap::new();

    for start in 0..n {
        if in_tree[start] {
            continue;
        }
        in_tree[start] = true;
        push_edges(g, NodeId(start), &mut heap);
        while let Some(Reverse((_, eid, to))) = heap.pop() {
            if in_tree[to] {
                continue;
            }
            in_tree[to] = true;
            chosen.push(EdgeId(eid));
            push_edges(g, NodeId(to), &mut heap);
        }
    }
    MstResult::new(g, chosen)
}

fn push_edges(
    g: &WeightedGraph,
    v: NodeId,
    heap: &mut BinaryHeap<Reverse<(CompositeWeight, usize, usize)>>,
) {
    for &e in g.incident_edges(v) {
        let other = g.edge(e).other(v);
        heap.push(Reverse((g.composite_weight(e, false), e.0, other.0)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{grid_graph, random_connected_graph};
    use crate::mst::kruskal;

    #[test]
    fn matches_kruskal_on_grid() {
        let g = grid_graph(4, 5, 3);
        assert_eq!(prim(&g).edges(), kruskal(&g).edges());
    }

    #[test]
    fn matches_kruskal_on_random_graphs() {
        for seed in 0..10 {
            let g = random_connected_graph(30, 90, seed);
            assert_eq!(prim(&g).edges(), kruskal(&g).edges());
        }
    }

    #[test]
    fn single_node_graph() {
        let g = WeightedGraph::with_nodes(1);
        assert!(prim(&g).edges().is_empty());
    }

    #[test]
    fn disconnected_graph_gives_forest() {
        let mut g = WeightedGraph::with_nodes(5);
        g.add_edge(NodeId(0), NodeId(1), 3).unwrap();
        g.add_edge(NodeId(2), NodeId(3), 1).unwrap();
        g.add_edge(NodeId(3), NodeId(4), 2).unwrap();
        let mst = prim(&g);
        assert_eq!(mst.edges().len(), 3);
    }
}
