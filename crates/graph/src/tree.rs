//! Rooted spanning-tree utilities.
//!
//! A [`RootedTree`] is a rooted spanning tree of a [`WeightedGraph`],
//! represented by a parent-pointer array (exactly the "component" encoding of
//! §2.1 once rooted). It offers the traversals and bookkeeping the marker and
//! the verifier need: children lists, DFS orders, subtree sizes, depths and
//! tree distances.

use crate::error::GraphError;
use crate::graph::{EdgeId, NodeId, WeightedGraph};
use crate::Result;
use std::collections::VecDeque;

/// A rooted spanning tree over the nodes of a [`WeightedGraph`].
///
/// # Examples
///
/// ```
/// use smst_graph::{WeightedGraph, NodeId, RootedTree};
///
/// let mut g = WeightedGraph::with_nodes(4);
/// g.add_edge(NodeId(0), NodeId(1), 1).unwrap();
/// g.add_edge(NodeId(1), NodeId(2), 2).unwrap();
/// g.add_edge(NodeId(1), NodeId(3), 3).unwrap();
/// let tree_edges: Vec<_> = (0..3).map(smst_graph::EdgeId).collect();
/// let t = RootedTree::from_edges(&g, &tree_edges, NodeId(0)).unwrap();
/// assert_eq!(t.parent(NodeId(2)), Some(NodeId(1)));
/// assert_eq!(t.depth(NodeId(3)), 2);
/// assert_eq!(t.subtree_size(NodeId(1)), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RootedTree {
    root: NodeId,
    /// parent[v] = None for the root.
    parent: Vec<Option<NodeId>>,
    /// parent_edge[v] = the graph edge to the parent (None for the root).
    parent_edge: Vec<Option<EdgeId>>,
    children: Vec<Vec<NodeId>>,
    depth: Vec<usize>,
}

impl RootedTree {
    /// Builds a rooted tree from a set of `n − 1` tree edges of `g`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NotASpanningTree`] if the edges do not form a
    /// spanning tree of `g` (wrong count, cycle, or not spanning).
    pub fn from_edges(g: &WeightedGraph, tree_edges: &[EdgeId], root: NodeId) -> Result<Self> {
        let n = g.node_count();
        if n == 0 {
            return Err(GraphError::NotASpanningTree("empty graph".into()));
        }
        if root.0 >= n {
            return Err(GraphError::UnknownNode(root.0));
        }
        if tree_edges.len() != n - 1 {
            return Err(GraphError::NotASpanningTree(format!(
                "expected {} edges, got {}",
                n - 1,
                tree_edges.len()
            )));
        }
        // adjacency restricted to tree edges
        let mut adj: Vec<Vec<(NodeId, EdgeId)>> = vec![Vec::new(); n];
        for &e in tree_edges {
            if e.0 >= g.edge_count() {
                return Err(GraphError::UnknownEdge(e.0));
            }
            let edge = g.edge(e);
            adj[edge.u.0].push((edge.v, e));
            adj[edge.v.0].push((edge.u, e));
        }
        let mut parent = vec![None; n];
        let mut parent_edge = vec![None; n];
        let mut depth = vec![usize::MAX; n];
        let mut children: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        let mut queue = VecDeque::new();
        depth[root.0] = 0;
        queue.push_back(root);
        let mut visited = 1;
        while let Some(v) = queue.pop_front() {
            for &(u, e) in &adj[v.0] {
                if depth[u.0] == usize::MAX {
                    depth[u.0] = depth[v.0] + 1;
                    parent[u.0] = Some(v);
                    parent_edge[u.0] = Some(e);
                    children[v.0].push(u);
                    visited += 1;
                    queue.push_back(u);
                }
            }
        }
        if visited != n {
            return Err(GraphError::NotASpanningTree(format!(
                "only {visited} of {n} nodes reachable from the root"
            )));
        }
        Ok(RootedTree {
            root,
            parent,
            parent_edge,
            children,
            depth,
        })
    }

    /// The root of the tree.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.parent.len()
    }

    /// The parent of `v` (`None` for the root).
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        self.parent[v.0]
    }

    /// The graph edge connecting `v` to its parent (`None` for the root).
    pub fn parent_edge(&self, v: NodeId) -> Option<EdgeId> {
        self.parent_edge[v.0]
    }

    /// The children of `v`, in the order they were discovered.
    pub fn children(&self, v: NodeId) -> &[NodeId] {
        &self.children[v.0]
    }

    /// The depth (hop distance from the root) of `v`.
    pub fn depth(&self, v: NodeId) -> usize {
        self.depth[v.0]
    }

    /// The height of the tree (maximum depth).
    pub fn height(&self) -> usize {
        self.depth.iter().copied().max().unwrap_or(0)
    }

    /// `true` if `v` is a leaf (has no children).
    pub fn is_leaf(&self, v: NodeId) -> bool {
        self.children[v.0].is_empty()
    }

    /// The tree edges, one per non-root node.
    pub fn edges(&self) -> Vec<EdgeId> {
        self.parent_edge.iter().filter_map(|&e| e).collect()
    }

    /// Returns `true` if `e` is one of the tree's edges.
    pub fn contains_edge(&self, e: EdgeId) -> bool {
        self.parent_edge.contains(&Some(e))
    }

    /// `true` if `ancestor` lies on the path from `v` to the root
    /// (a node is its own ancestor).
    pub fn is_ancestor(&self, ancestor: NodeId, v: NodeId) -> bool {
        let mut cur = Some(v);
        while let Some(x) = cur {
            if x == ancestor {
                return true;
            }
            cur = self.parent[x.0];
        }
        false
    }

    /// Nodes in preorder DFS, children visited in stored order.
    pub fn dfs_preorder(&self) -> Vec<NodeId> {
        self.dfs_preorder_from(self.root)
    }

    /// Preorder DFS of the subtree rooted at `start`.
    pub fn dfs_preorder_from(&self, start: NodeId) -> Vec<NodeId> {
        let mut order = Vec::new();
        let mut stack = vec![start];
        while let Some(v) = stack.pop() {
            order.push(v);
            // push children in reverse so that the first child is visited first
            for &c in self.children[v.0].iter().rev() {
                stack.push(c);
            }
        }
        order
    }

    /// Nodes in BFS order from the root.
    pub fn bfs_order(&self) -> Vec<NodeId> {
        let mut order = Vec::with_capacity(self.node_count());
        let mut queue = VecDeque::new();
        queue.push_back(self.root);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for &c in &self.children[v.0] {
                queue.push_back(c);
            }
        }
        order
    }

    /// Size of the subtree rooted at `v` (including `v`).
    pub fn subtree_size(&self, v: NodeId) -> usize {
        self.dfs_preorder_from(v).len()
    }

    /// All nodes of the subtree rooted at `v`.
    pub fn subtree_nodes(&self, v: NodeId) -> Vec<NodeId> {
        self.dfs_preorder_from(v)
    }

    /// Hop distance between two nodes *in the tree*.
    pub fn tree_distance(&self, u: NodeId, v: NodeId) -> usize {
        // walk both nodes up to their lowest common ancestor
        let (mut a, mut b) = (u, v);
        let mut da = self.depth[a.0];
        let mut db = self.depth[b.0];
        let mut dist = 0;
        while da > db {
            a = self.parent[a.0].expect("non-root node has a parent");
            da -= 1;
            dist += 1;
        }
        while db > da {
            b = self.parent[b.0].expect("non-root node has a parent");
            db -= 1;
            dist += 1;
        }
        while a != b {
            a = self.parent[a.0].expect("non-root node has a parent");
            b = self.parent[b.0].expect("non-root node has a parent");
            dist += 2;
        }
        dist
    }

    /// The path from `v` up to (and including) `ancestor`.
    ///
    /// Returns `None` if `ancestor` is not an ancestor of `v`.
    pub fn path_to_ancestor(&self, v: NodeId, ancestor: NodeId) -> Option<Vec<NodeId>> {
        let mut path = vec![v];
        let mut cur = v;
        while cur != ancestor {
            cur = self.parent[cur.0]?;
            path.push(cur);
        }
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small fixed tree:
    /// ```text
    ///        0
    ///       / \
    ///      1   2
    ///     / \    \
    ///    3   4    5
    /// ```
    fn sample() -> (WeightedGraph, RootedTree) {
        let mut g = WeightedGraph::with_nodes(6);
        let e01 = g.add_edge(NodeId(0), NodeId(1), 1).unwrap();
        let e02 = g.add_edge(NodeId(0), NodeId(2), 2).unwrap();
        let e13 = g.add_edge(NodeId(1), NodeId(3), 3).unwrap();
        let e14 = g.add_edge(NodeId(1), NodeId(4), 4).unwrap();
        let e25 = g.add_edge(NodeId(2), NodeId(5), 5).unwrap();
        // one extra non-tree edge
        g.add_edge(NodeId(3), NodeId(5), 10).unwrap();
        let t = RootedTree::from_edges(&g, &[e01, e02, e13, e14, e25], NodeId(0)).unwrap();
        (g, t)
    }

    #[test]
    fn parents_and_children() {
        let (_, t) = sample();
        assert_eq!(t.root(), NodeId(0));
        assert_eq!(t.parent(NodeId(0)), None);
        assert_eq!(t.parent(NodeId(3)), Some(NodeId(1)));
        assert_eq!(t.children(NodeId(1)), &[NodeId(3), NodeId(4)]);
        assert!(t.is_leaf(NodeId(4)));
        assert!(!t.is_leaf(NodeId(1)));
    }

    #[test]
    fn depth_and_height() {
        let (_, t) = sample();
        assert_eq!(t.depth(NodeId(0)), 0);
        assert_eq!(t.depth(NodeId(5)), 2);
        assert_eq!(t.height(), 2);
    }

    #[test]
    fn dfs_preorder_visits_all_once() {
        let (_, t) = sample();
        let order = t.dfs_preorder();
        assert_eq!(order.len(), 6);
        assert_eq!(order[0], NodeId(0));
        let mut sorted: Vec<usize> = order.iter().map(|v| v.0).collect();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4, 5]);
        // children before siblings' subtrees
        assert_eq!(order[1], NodeId(1));
        assert_eq!(order[2], NodeId(3));
    }

    #[test]
    fn bfs_order_is_level_by_level() {
        let (_, t) = sample();
        let order = t.bfs_order();
        assert_eq!(order[0], NodeId(0));
        assert_eq!(&order[1..3], &[NodeId(1), NodeId(2)]);
    }

    #[test]
    fn subtree_sizes() {
        let (_, t) = sample();
        assert_eq!(t.subtree_size(NodeId(0)), 6);
        assert_eq!(t.subtree_size(NodeId(1)), 3);
        assert_eq!(t.subtree_size(NodeId(5)), 1);
    }

    #[test]
    fn ancestor_queries() {
        let (_, t) = sample();
        assert!(t.is_ancestor(NodeId(0), NodeId(5)));
        assert!(t.is_ancestor(NodeId(1), NodeId(4)));
        assert!(!t.is_ancestor(NodeId(2), NodeId(3)));
        assert!(t.is_ancestor(NodeId(3), NodeId(3)));
    }

    #[test]
    fn tree_distances() {
        let (_, t) = sample();
        assert_eq!(t.tree_distance(NodeId(3), NodeId(4)), 2);
        assert_eq!(t.tree_distance(NodeId(3), NodeId(5)), 4);
        assert_eq!(t.tree_distance(NodeId(0), NodeId(0)), 0);
        assert_eq!(t.tree_distance(NodeId(5), NodeId(0)), 2);
    }

    #[test]
    fn path_to_ancestor_works() {
        let (_, t) = sample();
        assert_eq!(
            t.path_to_ancestor(NodeId(3), NodeId(0)).unwrap(),
            vec![NodeId(3), NodeId(1), NodeId(0)]
        );
        assert!(t.path_to_ancestor(NodeId(3), NodeId(2)).is_none());
    }

    #[test]
    fn rejects_wrong_edge_count() {
        let (g, _) = sample();
        let err = RootedTree::from_edges(&g, &[EdgeId(0)], NodeId(0)).unwrap_err();
        assert!(matches!(err, GraphError::NotASpanningTree(_)));
    }

    #[test]
    fn rejects_cycle_as_spanning_tree() {
        let mut g = WeightedGraph::with_nodes(4);
        let e0 = g.add_edge(NodeId(0), NodeId(1), 1).unwrap();
        let e1 = g.add_edge(NodeId(1), NodeId(2), 1).unwrap();
        let e2 = g.add_edge(NodeId(2), NodeId(0), 1).unwrap();
        g.add_edge(NodeId(2), NodeId(3), 1).unwrap();
        // three edges but they form a triangle, leaving node 3 unreached
        let err = RootedTree::from_edges(&g, &[e0, e1, e2], NodeId(0)).unwrap_err();
        assert!(matches!(err, GraphError::NotASpanningTree(_)));
    }

    #[test]
    fn contains_edge_and_edges() {
        let (_, t) = sample();
        let edges = t.edges();
        assert_eq!(edges.len(), 5);
        assert!(t.contains_edge(EdgeId(0)));
        assert!(!t.contains_edge(EdgeId(5)));
    }
}
