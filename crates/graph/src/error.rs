//! Error types for graph construction and queries.

use std::error::Error;
use std::fmt;

/// Errors produced while building or querying a [`crate::WeightedGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A node identifier was outside the range of existing nodes.
    UnknownNode(usize),
    /// An edge identifier was outside the range of existing edges.
    UnknownEdge(usize),
    /// An edge between the two given endpoints already exists.
    DuplicateEdge(usize, usize),
    /// Self-loops are not allowed in the paper's model.
    SelfLoop(usize),
    /// The requested operation requires a connected graph.
    Disconnected,
    /// A port number did not correspond to any incident edge of the node.
    UnknownPort {
        /// The node whose port table was consulted.
        node: usize,
        /// The offending port number.
        port: usize,
    },
    /// The candidate subgraph was expected to be a spanning tree but is not.
    NotASpanningTree(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownNode(v) => write!(f, "unknown node id {v}"),
            GraphError::UnknownEdge(e) => write!(f, "unknown edge id {e}"),
            GraphError::DuplicateEdge(u, v) => {
                write!(f, "edge between {u} and {v} already exists")
            }
            GraphError::SelfLoop(v) => write!(f, "self-loop at node {v} is not allowed"),
            GraphError::Disconnected => write!(f, "graph is not connected"),
            GraphError::UnknownPort { node, port } => {
                write!(f, "node {node} has no port {port}")
            }
            GraphError::NotASpanningTree(reason) => {
                write!(f, "subgraph is not a spanning tree: {reason}")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_meaningful() {
        let msgs = [
            GraphError::UnknownNode(3).to_string(),
            GraphError::UnknownEdge(7).to_string(),
            GraphError::DuplicateEdge(1, 2).to_string(),
            GraphError::SelfLoop(4).to_string(),
            GraphError::Disconnected.to_string(),
            GraphError::UnknownPort { node: 1, port: 9 }.to_string(),
            GraphError::NotASpanningTree("cycle".into()).to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(m.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
