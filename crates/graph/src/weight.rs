//! Edge weights and the unique-weight perturbation of §2.1.
//!
//! The paper assumes distinct edge weights so that the MST is unique. When the
//! input graph does not have distinct weights, §2.1 (footnote 1, following
//! Kor, Korman, Peleg) replaces each weight `ω(e)` by the composite
//!
//! ```text
//! ω′(e) = ⟨ ω(e), 1 − Y(e), ID_min(e), ID_max(e) ⟩
//! ```
//!
//! compared lexicographically, where `Y(e)` indicates whether `e` belongs to
//! the *candidate* tree `T` that is being verified. Under ω′ all weights are
//! distinct, and the given `T` is an MST of `G` under ω if and only if it is an
//! MST under ω′ — which is exactly the property a *verification* scheme needs
//! (the standard ID-only tie-break does not preserve it).

use std::cmp::Ordering;
use std::fmt;

/// A raw (possibly non-distinct) edge weight.
///
/// The paper assumes weights polynomial in `n`; `u64` is more than enough.
pub type Weight = u64;

/// A composite weight implementing the lexicographic perturbation ω′ of §2.1.
///
/// Ordering is lexicographic over `(weight, non_tree, id_min, id_max)`:
/// smaller raw weight first, then tree edges (`non_tree = 0`) before non-tree
/// edges of equal raw weight, then endpoint identifiers as a final tie-break.
///
/// # Examples
///
/// ```
/// use smst_graph::weight::CompositeWeight;
///
/// // Two edges of equal raw weight: the one inside the candidate tree wins.
/// let in_tree = CompositeWeight::new(10, true, 3, 7);
/// let out_tree = CompositeWeight::new(10, false, 1, 2);
/// assert!(in_tree < out_tree);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CompositeWeight {
    /// The original weight ω(e).
    pub weight: Weight,
    /// `1 − Y(e)`: 0 if the edge belongs to the candidate tree, 1 otherwise.
    pub non_tree: u8,
    /// The smaller endpoint identifier.
    pub id_min: u64,
    /// The larger endpoint identifier.
    pub id_max: u64,
}

impl CompositeWeight {
    /// Builds the composite weight for an edge.
    ///
    /// `in_candidate_tree` is the indicator `Y(e)` of §2.1: whether the edge
    /// belongs to the candidate tree `T` being verified. The two endpoint
    /// identifiers may be passed in either order.
    pub fn new(weight: Weight, in_candidate_tree: bool, id_a: u64, id_b: u64) -> Self {
        CompositeWeight {
            weight,
            non_tree: if in_candidate_tree { 0 } else { 1 },
            id_min: id_a.min(id_b),
            id_max: id_a.max(id_b),
        }
    }

    /// Builds a composite weight for an edge ignoring the candidate-tree
    /// indicator (useful for pure construction, where the standard ID
    /// tie-break suffices).
    pub fn without_indicator(weight: Weight, id_a: u64, id_b: u64) -> Self {
        Self::new(weight, false, id_a, id_b)
    }

    /// Returns `true` if this weight marks an edge of the candidate tree.
    pub fn in_candidate_tree(&self) -> bool {
        self.non_tree == 0
    }
}

impl PartialOrd for CompositeWeight {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for CompositeWeight {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.weight, self.non_tree, self.id_min, self.id_max).cmp(&(
            other.weight,
            other.non_tree,
            other.id_min,
            other.id_max,
        ))
    }
}

impl fmt::Display for CompositeWeight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "⟨{}, {}, {}, {}⟩",
            self.weight, self.non_tree, self.id_min, self.id_max
        )
    }
}

/// Number of bits needed to store a value in `0..=max_value`.
///
/// Used throughout the workspace for the O(log n) memory-size accounting.
///
/// # Examples
///
/// ```
/// use smst_graph::weight::bits_for;
/// assert_eq!(bits_for(0), 1);
/// assert_eq!(bits_for(1), 1);
/// assert_eq!(bits_for(255), 8);
/// assert_eq!(bits_for(256), 9);
/// ```
pub fn bits_for(max_value: u64) -> u32 {
    if max_value <= 1 {
        1
    } else {
        64 - max_value.leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn tree_edges_break_ties_first() {
        let a = CompositeWeight::new(5, true, 10, 20);
        let b = CompositeWeight::new(5, false, 1, 2);
        assert!(a < b);
    }

    #[test]
    fn raw_weight_dominates() {
        let a = CompositeWeight::new(4, false, 100, 200);
        let b = CompositeWeight::new(5, true, 1, 2);
        assert!(a < b);
    }

    #[test]
    fn id_tie_break_is_total() {
        let a = CompositeWeight::new(5, false, 1, 9);
        let b = CompositeWeight::new(5, false, 2, 3);
        assert!(a < b);
        assert_ne!(a, b);
    }

    #[test]
    fn display_mentions_all_fields() {
        let w = CompositeWeight::new(7, true, 3, 5);
        let s = w.to_string();
        assert!(s.contains('7') && s.contains('3') && s.contains('5'));
    }

    #[test]
    fn bits_for_small_values() {
        assert_eq!(bits_for(0), 1);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(1023), 10);
        assert_eq!(bits_for(1024), 11);
    }

    proptest! {
        #[test]
        fn ordering_is_antisymmetric(w1 in 0u64..100, w2 in 0u64..100,
                                      t1 in proptest::bool::ANY, t2 in proptest::bool::ANY,
                                      a1 in 0u64..50, b1 in 0u64..50,
                                      a2 in 0u64..50, b2 in 0u64..50) {
            let x = CompositeWeight::new(w1, t1, a1, b1);
            let y = CompositeWeight::new(w2, t2, a2, b2);
            if x < y { prop_assert!(y >= x); }
            if x == y { prop_assert_eq!(x.cmp(&y), Ordering::Equal); }
        }

        #[test]
        fn distinct_endpoint_pairs_give_distinct_weights(
            w in 0u64..10, a in 0u64..1000, b in 0u64..1000, c in 0u64..1000, d in 0u64..1000
        ) {
            prop_assume!((a.min(b), a.max(b)) != (c.min(d), c.max(d)));
            let x = CompositeWeight::new(w, false, a, b);
            let y = CompositeWeight::new(w, false, c, d);
            prop_assert_ne!(x, y);
        }

        #[test]
        fn bits_for_is_monotone(v in 0u64..1_000_000) {
            prop_assert!(bits_for(v) <= bits_for(v + 1));
            prop_assert!(u64::from(bits_for(v)) <= 64);
        }
    }
}
