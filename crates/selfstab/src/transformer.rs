//! The enhanced Awerbuch–Varghese transformer (§10).
//!
//! The transformer turns an input/output construction algorithm plus a
//! self-stabilizing verification scheme into a self-stabilizing algorithm:
//! construct once, verify forever, reset-and-reconstruct whenever a fault is
//! detected. Following the paper's accounting (Theorem 10.3), one
//! stabilization episode from an arbitrary initial configuration costs
//!
//! * the detection time of the verification scheme on the (arbitrary,
//!   possibly corrupted) initial configuration,
//! * a reset wave (`O(n)` in the paper's model; the underlying self-
//!   stabilizing spanning-tree / reset substrate of \[13\] and \[1, 28\] is
//!   charged as a linear number of rounds), and
//! * the construction + marker time.
//!
//! The driver below *measures* the detection part by actually running the
//! verifier of the chosen variant on the corrupted configuration, then
//! charges the reset and reconstruction and re-checks functional correctness
//! (the output components describe the unique MST).

use crate::baselines::{detection_cost, verification_memory_bits, DetectionCost};
use smst_core::{Marker, SyncMst};
use smst_graph::mst::kruskal;
use smst_graph::{ComponentMap, NodeId, WeightedGraph};
use smst_labeling::Instance;

/// Which verification scheme the transformer is instantiated with
/// (the rows of Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// SYNC_MST + the paper's `O(log n)`-bit polylog-time verifier.
    Paper,
    /// SYNC_MST + the `O(log² n)`-bit 1-round scheme of \[54, 55\]
    /// (stand-in for the `O(log² n)`-memory algorithm of \[17\]).
    OneRoundLabels,
    /// SYNC_MST + label-free re-verification by recomputation
    /// (stand-in for the `Ω(n·|E|)`-time algorithms of [48, 18]).
    Recompute,
}

impl Variant {
    /// All variants, in Table 1 order.
    pub fn all() -> [Variant; 3] {
        [Variant::Recompute, Variant::OneRoundLabels, Variant::Paper]
    }

    /// A short label for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Variant::Paper => "this paper (O(log n) bits)",
            Variant::OneRoundLabels => "1-round labels (O(log^2 n) bits)",
            Variant::Recompute => "recompute checker (O(log n) bits)",
        }
    }
}

/// The outcome of one stabilization episode.
#[derive(Debug, Clone)]
pub struct StabilizationOutcome {
    /// Rounds until the corruption was detected (0 if the initial
    /// configuration was already flagged as requiring construction).
    pub detection_rounds: u64,
    /// Rounds charged to the reset wave.
    pub reset_rounds: u64,
    /// Rounds used by SYNC_MST plus the marker.
    pub construction_rounds: u64,
    /// Maximum register size over all nodes (construction and verification).
    pub memory_bits_per_node: u64,
    /// The stabilized output: the components describing the constructed MST.
    pub components: ComponentMap,
    /// Whether the stabilized output is indeed the MST (sanity check; always
    /// `true` unless something is broken).
    pub output_correct: bool,
}

impl StabilizationOutcome {
    /// Total stabilization time in rounds.
    pub fn total_rounds(&self) -> u64 {
        self.detection_rounds + self.reset_rounds + self.construction_rounds
    }
}

/// The self-stabilizing MST construction obtained from the transformer.
#[derive(Debug, Clone, Copy)]
pub struct SelfStabilizingMst {
    variant: Variant,
}

impl SelfStabilizingMst {
    /// Instantiates the transformer with a verification variant.
    pub fn new(variant: Variant) -> Self {
        SelfStabilizingMst { variant }
    }

    /// The variant in use.
    pub fn variant(&self) -> Variant {
        self.variant
    }

    /// Runs one stabilization episode starting from an arbitrary (possibly
    /// adversarial) component configuration.
    ///
    /// # Panics
    ///
    /// Panics if the graph is empty or disconnected.
    pub fn stabilize(
        &self,
        graph: &WeightedGraph,
        initial_components: &ComponentMap,
    ) -> StabilizationOutcome {
        let instance = Instance::new(graph.clone(), initial_components.clone());

        // 1. detection: how long until the chosen verifier flags the initial
        //    configuration (0 when it is already a correct MST, in which case
        //    no reconstruction is needed at all).
        let already_correct = instance.satisfies_mst();
        let detection = if already_correct {
            DetectionCost {
                rounds: 0,
                detected: false,
            }
        } else {
            detection_cost(self.variant, &instance)
        };

        self.complete_episode(graph, initial_components, already_correct, detection)
    }

    /// Completes a stabilization episode **given the detection phase's
    /// outcome**: reset + reconstruction, memory and functional-correctness
    /// accounting (steps 2–4 of [`Self::stabilize`]).
    ///
    /// Split out so alternative detection drivers — in particular the
    /// parallel execution engine, which measures detection on its sharded
    /// runner — share one implementation of everything after detection.
    pub fn complete_episode(
        &self,
        graph: &WeightedGraph,
        initial_components: &ComponentMap,
        already_correct: bool,
        detection: DetectionCost,
    ) -> StabilizationOutcome {
        let DetectionCost {
            rounds: detection_rounds,
            detected,
        } = detection;

        // 2. reset + reconstruction (skipped if nothing was detected and the
        //    configuration is already correct). The construction run also
        //    provides the memory accounting of step 3 (SYNC_MST is
        //    deterministic, so re-running it for the skipped branch gives
        //    the same footprint).
        let n = graph.node_count() as u64;
        let (reset_rounds, construction_rounds, components, construction_bits) =
            if already_correct && !detected {
                let bits = SyncMst.run(graph).memory_bits_per_node;
                (0, 0, initial_components.clone(), bits)
            } else {
                let outcome = SyncMst.run(graph);
                let components = ComponentMap::from_rooted_tree(graph, &outcome.tree);
                // the marker re-labels the fresh output so that verification
                // can resume (for the label-free variant this is a no-op)
                let marker_rounds = match self.variant {
                    Variant::Recompute => 0,
                    _ => {
                        let fresh = Instance::new(graph.clone(), components.clone());
                        Marker
                            .label(&fresh)
                            .map(|(_, report)| report.marker_rounds)
                            .unwrap_or(0)
                    }
                };
                (
                    n,
                    outcome.rounds + marker_rounds,
                    components,
                    outcome.memory_bits_per_node,
                )
            };

        // 3. memory: the maximum of the construction's and the verifier's
        //    per-node footprint.
        let verification_bits = verification_memory_bits(self.variant, graph);
        let memory_bits_per_node = construction_bits.max(verification_bits);

        // 4. functional correctness of the stabilized output
        let final_instance = Instance::new(graph.clone(), components.clone());
        let output_correct = final_instance.satisfies_mst()
            && final_instance
                .candidate_tree()
                .map(|t| {
                    let mut a = t.edges();
                    a.sort_unstable();
                    a == kruskal(graph).edges()
                })
                .unwrap_or(false);

        StabilizationOutcome {
            detection_rounds,
            reset_rounds,
            construction_rounds,
            memory_bits_per_node,
            components,
            output_correct,
        }
    }

    /// Convenience: stabilizes from an adversarial configuration in which
    /// every node's component pointer is chosen pseudo-randomly.
    pub fn stabilize_from_garbage(&self, graph: &WeightedGraph, seed: u64) -> StabilizationOutcome {
        let components = garbage_components(graph, seed);
        self.stabilize(graph, &components)
    }

    /// The detection time and detection distance the stabilized system
    /// inherits from its verification scheme (property (1)/(2) of the paper's
    /// abstract): measured by injecting `f` faults into a stabilized
    /// configuration. Only meaningful for the [`Variant::Paper`] and
    /// [`Variant::OneRoundLabels`] variants.
    pub fn post_stabilization_detection(
        &self,
        graph: &WeightedGraph,
        faults: usize,
        seed: u64,
    ) -> smst_sim::DetectionReport {
        let outcome = self.stabilize_from_garbage(graph, seed);
        let instance = Instance::new(graph.clone(), outcome.components.clone());
        let plan = smst_sim::FaultPlan::random(graph.node_count(), faults, seed ^ 0xABCD);
        match self.variant {
            Variant::Paper => {
                let result = smst_core::scheme::run_sync_fault_experiment(
                    &instance,
                    &plan,
                    smst_core::faults::FaultKind::StoredPieceWeight,
                    seed,
                );
                result.report
            }
            _ => crate::baselines::one_round_detection_report(&instance, &plan, seed),
        }
    }
}

/// An adversarial component configuration: every node points at a pseudo-
/// random port (or stores no pointer).
pub fn garbage_components(graph: &WeightedGraph, seed: u64) -> ComponentMap {
    use smst_rng::{Rng, SeedableRng, StdRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut components = ComponentMap::empty(graph.node_count());
    for v in graph.nodes() {
        let d = graph.degree(v);
        if d > 0 && rng.gen_bool(0.8) {
            components.set_pointer(v, Some(smst_graph::Port(rng.gen_range(0..d))));
        }
    }
    let _ = NodeId(0);
    components
}

#[cfg(test)]
mod tests {
    use super::*;
    use smst_graph::generators::random_connected_graph;

    #[test]
    fn stabilizes_from_garbage_for_all_variants() {
        let g = random_connected_graph(20, 50, 1);
        for variant in Variant::all() {
            let outcome = SelfStabilizingMst::new(variant).stabilize_from_garbage(&g, 7);
            assert!(outcome.output_correct, "{variant:?} must output the MST");
            assert!(outcome.total_rounds() > 0);
        }
    }

    #[test]
    fn already_correct_configuration_is_left_untouched() {
        let g = random_connected_graph(16, 40, 2);
        let mst = SyncMst.run(&g);
        let components = ComponentMap::from_rooted_tree(&g, &mst.tree);
        let outcome = SelfStabilizingMst::new(Variant::Paper).stabilize(&g, &components);
        assert!(outcome.output_correct);
        assert_eq!(outcome.construction_rounds, 0);
        assert_eq!(outcome.reset_rounds, 0);
    }

    #[test]
    fn paper_variant_is_linear_time_and_log_memory() {
        for n in [16usize, 64, 128] {
            let g = random_connected_graph(n, 3 * n, 3);
            let outcome = SelfStabilizingMst::new(Variant::Paper).stabilize_from_garbage(&g, 5);
            assert!(
                outcome.construction_rounds + outcome.reset_rounds <= 200 * n as u64,
                "n={n}: construction part must be O(n)"
            );
            let log_n = (n as f64).log2();
            assert!(
                (outcome.memory_bits_per_node as f64) < 150.0 * log_n + 400.0,
                "n={n}: {} bits is not O(log n)",
                outcome.memory_bits_per_node
            );
        }
    }

    #[test]
    fn recompute_variant_costs_much_more_time_on_larger_graphs() {
        let g = random_connected_graph(64, 200, 4);
        let paper = SelfStabilizingMst::new(Variant::Paper).stabilize_from_garbage(&g, 6);
        let recompute = SelfStabilizingMst::new(Variant::Recompute).stabilize_from_garbage(&g, 6);
        assert!(
            recompute.total_rounds() > 4 * paper.total_rounds(),
            "the n·|E| checker should dominate the paper's transformer"
        );
    }

    #[test]
    fn one_round_variant_memory_grows_faster_than_paper() {
        // growth-rate comparison (the Table 1 claim is asymptotic; see the
        // memory figure harness for the full sweep)
        let small = random_connected_graph(64, 180, 5);
        let large = random_connected_graph(512, 1300, 5);
        let p_small = SelfStabilizingMst::new(Variant::Paper).stabilize_from_garbage(&small, 8);
        let p_large = SelfStabilizingMst::new(Variant::Paper).stabilize_from_garbage(&large, 8);
        let k_small =
            SelfStabilizingMst::new(Variant::OneRoundLabels).stabilize_from_garbage(&small, 8);
        let k_large =
            SelfStabilizingMst::new(Variant::OneRoundLabels).stabilize_from_garbage(&large, 8);
        let paper_ratio = p_large.memory_bits_per_node as f64 / p_small.memory_bits_per_node as f64;
        assert!(
            paper_ratio <= 1.8,
            "the paper's memory must stay O(log n) (ratio {paper_ratio})"
        );
        assert!(
            k_large.memory_bits_per_node >= k_small.memory_bits_per_node,
            "the O(log^2 n) baseline's memory must grow with n"
        );
    }

    #[test]
    fn garbage_components_are_deterministic_per_seed() {
        let g = random_connected_graph(12, 30, 9);
        assert_eq!(garbage_components(&g, 1), garbage_components(&g, 1));
    }
}
