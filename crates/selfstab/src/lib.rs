//! # smst-selfstab
//!
//! The self-stabilization layer of the paper (§10): the enhanced
//! Awerbuch–Varghese transformer that combines a non-stabilizing construction
//! algorithm (SYNC_MST) with a self-stabilizing verification scheme to obtain
//! a self-stabilizing MST construction, plus the baselines the paper's
//! Table 1 compares against.
//!
//! The transformer's behaviour (Theorem 10.3) is: run the construction and
//! the marker once; from then on run the verifier forever; whenever some node
//! raises an alarm, reset and re-run the construction. Its stabilization time
//! is `O(T_construction + T_marker + T_detection + n)` and its memory is the
//! maximum of the construction's and the verifier's — with the paper's
//! verifier this gives the headline `O(n)` time / `O(log n)` bits row of
//! Table 1.
//!
//! Three variants are provided, matching the rows of Table 1:
//!
//! * [`Variant::Paper`] — SYNC_MST + the `O(log n)`-bit verifier of
//!   `smst-core` (this paper);
//! * [`Variant::OneRoundLabels`] — SYNC_MST + the `O(log² n)`-bit 1-round
//!   scheme of Korman–Kutten (what one gets by plugging [54, 55] into the
//!   transformer; the closest implementable stand-in for the `O(log² n)`-bit
//!   algorithm of Blin et al. \[17\]);
//! * [`Variant::Recompute`] — the label-free checker that re-verifies by
//!   recomputation, whose repeated checking cost models the `Ω(n·|E|)`-time
//!   behaviour of the `O(log n)`-bit algorithms of Higham–Liang \[48\] and
//!   Blin et al. \[18\].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod transformer;

pub use transformer::{SelfStabilizingMst, StabilizationOutcome, Variant};
