//! The verification baselines the transformer can be instantiated with, and
//! their cost models (the non-headline rows of Table 1).

use crate::transformer::Variant;
use smst_core::{Marker, MstVerificationScheme};
use smst_graph::mst::kruskal;
use smst_graph::{NodeId, WeightedGraph};
use smst_labeling::kkp::KkpMstScheme;
use smst_labeling::recompute::RecomputeChecker;
use smst_labeling::scheme::{max_label_bits, verify_all};
use smst_labeling::{Instance, OneRoundScheme};
use smst_sim::{DetectionReport, FaultPlan};

/// How long a verification scheme took to flag a non-MST configuration.
#[derive(Debug, Clone, Copy)]
pub struct DetectionCost {
    /// Rounds until the first alarm.
    pub rounds: u64,
    /// Whether an alarm was actually raised.
    pub detected: bool,
}

/// Labels of the correct MST of the instance's graph — the "stale" labels an
/// adversarially corrupted configuration would still carry.
fn stale_core_labels(graph: &WeightedGraph) -> Option<Vec<smst_core::CoreLabel>> {
    let tree = kruskal(graph).rooted_at(graph, NodeId(0)).ok()?;
    let correct = Instance::from_tree(graph.clone(), &tree);
    Marker.label(&correct).ok().map(|(labels, _)| labels)
}

/// Measures (or charges, for the label-free checker) the rounds one
/// verification pass needs to flag the given non-MST instance.
pub fn detection_cost(variant: Variant, instance: &Instance) -> DetectionCost {
    let n = instance.node_count();
    match variant {
        Variant::Paper => {
            let budget = MstVerificationScheme::sync_budget(n) * 4;
            match stale_core_labels(&instance.graph) {
                Some(labels) => {
                    match smst_core::scheme::rounds_until_rejection(instance, labels, budget) {
                        Some(rounds) => DetectionCost {
                            rounds: rounds as u64,
                            detected: true,
                        },
                        None => DetectionCost {
                            rounds: budget as u64,
                            detected: false,
                        },
                    }
                }
                None => DetectionCost {
                    rounds: 1,
                    detected: true,
                },
            }
        }
        Variant::OneRoundLabels => {
            let tree = kruskal(&instance.graph).rooted_at(&instance.graph, NodeId(0));
            let labels = tree.ok().and_then(|t| {
                let correct = Instance::from_tree(instance.graph.clone(), &t);
                KkpMstScheme.mark(&correct).ok()
            });
            match labels {
                Some(labels) => {
                    let outcome = verify_all(&KkpMstScheme, instance, &labels);
                    if outcome.accepted() {
                        // the stale labels did not expose the corruption in one
                        // round; fall back to a recomputation pass
                        let cost = RecomputeChecker.cost(instance);
                        DetectionCost {
                            rounds: cost.rounds,
                            detected: true,
                        }
                    } else {
                        DetectionCost {
                            rounds: 1,
                            detected: true,
                        }
                    }
                }
                None => DetectionCost {
                    rounds: 1,
                    detected: true,
                },
            }
        }
        Variant::Recompute => DetectionCost {
            rounds: RecomputeChecker.low_memory_cost(instance).rounds,
            detected: true,
        },
    }
}

/// The per-node memory footprint of the verification scheme of a variant on
/// the given graph (labels plus verifier working registers).
pub fn verification_memory_bits(variant: Variant, graph: &WeightedGraph) -> u64 {
    let tree = match kruskal(graph).rooted_at(graph, NodeId(0)) {
        Ok(t) => t,
        Err(_) => return 0,
    };
    let instance = Instance::from_tree(graph.clone(), &tree);
    match variant {
        Variant::Paper => {
            let scheme = MstVerificationScheme::new();
            match scheme.mark(&instance) {
                Ok((labels, _)) => {
                    let verifier = scheme.verifier(&instance, labels);
                    let net = verifier.network();
                    net.memory_bits(&verifier).into_iter().max().unwrap_or(0)
                }
                Err(_) => 0,
            }
        }
        Variant::OneRoundLabels => match KkpMstScheme.mark(&instance) {
            Ok(labels) => max_label_bits(&KkpMstScheme, &instance, &labels) + 2,
            Err(_) => 0,
        },
        Variant::Recompute => RecomputeChecker.low_memory_cost(&instance).bits_per_node,
    }
}

/// Detection report of the 1-round baseline after `f` label corruptions:
/// detection time is one round and the detection distance is at most 1 hop
/// from each fault (the property inherited from [54, 55]).
pub fn one_round_detection_report(
    instance: &Instance,
    plan: &FaultPlan,
    seed: u64,
) -> DetectionReport {
    let mut labels = match KkpMstScheme.mark(instance) {
        Ok(labels) => labels,
        Err(_) => return DetectionReport::not_detected(),
    };
    for (i, &v) in plan.nodes().iter().enumerate() {
        let l = &mut labels[v.index()];
        l.sp.dist = l.sp.dist.wrapping_add(1 + (seed + i as u64) % 5);
    }
    let outcome = verify_all(&KkpMstScheme, instance, &labels);
    if outcome.accepted() {
        DetectionReport::not_detected()
    } else {
        DetectionReport::from_alarms(&instance.graph, 1, outcome.rejecting, plan.nodes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transformer::garbage_components;
    use smst_graph::generators::random_connected_graph;

    #[test]
    fn detection_costs_are_ordered_as_in_table_1() {
        let g = random_connected_graph(32, 90, 1);
        let corrupted = Instance::new(g.clone(), garbage_components(&g, 3));
        assert!(!corrupted.satisfies_mst());
        let paper = detection_cost(Variant::Paper, &corrupted);
        let one_round = detection_cost(Variant::OneRoundLabels, &corrupted);
        let recompute = detection_cost(Variant::Recompute, &corrupted);
        assert!(paper.detected && one_round.detected && recompute.detected);
        assert!(recompute.rounds > paper.rounds);
        assert!(recompute.rounds > one_round.rounds);
    }

    #[test]
    fn memory_growth_rates_are_ordered_as_in_table_1() {
        // The asymptotic claim of Table 1 is about growth rates, not about
        // constants at small n: the paper's registers stay at Θ(log n) bits
        // while the 1-round labels grow like Θ(log² n). We therefore compare
        // how the footprints grow when n increases 16-fold.
        let small = random_connected_graph(64, 180, 2);
        let large = random_connected_graph(1024, 2600, 2);
        let paper_small = verification_memory_bits(Variant::Paper, &small) as f64;
        let paper_large = verification_memory_bits(Variant::Paper, &large) as f64;
        let kkp_small = verification_memory_bits(Variant::OneRoundLabels, &small) as f64;
        let kkp_large = verification_memory_bits(Variant::OneRoundLabels, &large) as f64;
        assert!(paper_small > 0.0 && kkp_small > 0.0);
        // the paper's footprint grows at most like log n (ratio 10/6 ≈ 1.67)
        assert!(
            paper_large / paper_small <= 1.8,
            "paper footprint grew {paper_small} -> {paper_large}, faster than O(log n)"
        );
        // the 1-round labels grow strictly faster than the paper's registers
        assert!(
            kkp_large / kkp_small > paper_large / paper_small,
            "O(log^2 n) labels ({kkp_small} -> {kkp_large}) should grow faster than \
             the paper's O(log n) registers ({paper_small} -> {paper_large})"
        );
        let recompute = verification_memory_bits(Variant::Recompute, &large);
        assert!(recompute > 0);
    }

    #[test]
    fn one_round_report_detects_at_distance_one() {
        let g = random_connected_graph(20, 50, 4);
        let tree = kruskal(&g).rooted_at(&g, NodeId(0)).unwrap();
        let instance = Instance::from_tree(g, &tree);
        let plan = FaultPlan::random(20, 2, 7);
        let report = one_round_detection_report(&instance, &plan, 5);
        assert!(report.detected);
        assert!(report.max_detection_distance <= 1);
    }
}
