//! The `Roots`, `EndP`, `Parents` and `Or-EndP` strings of §5.2–§5.3.
//!
//! These strings represent the fragment hierarchy and the candidate function
//! distributively using `O(log n)` bits per node: each string has `ℓ + 1`
//! entries (one per level) of one or two bits each. The module provides the
//! marker-side builder (from a [`Hierarchy`]) and the node-local legality
//! checks — the RS and EPS conditions — that the verifier evaluates in a
//! single round by reading its own strings and those of its tree parent and
//! children.

use smst_graph::{Hierarchy, RootedTree, WeightedGraph};

/// One entry of the `Roots` string.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RootSym {
    /// `1`: the node is the root of its level-`j` fragment.
    Root,
    /// `0`: the node belongs to a level-`j` fragment but is not its root.
    NonRoot,
    /// `*`: the node belongs to no level-`j` fragment.
    Absent,
}

/// One entry of the `EndP` string.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EndpSym {
    /// The node is the endpoint of its fragment's candidate edge, which leads
    /// to the node's tree parent.
    Up,
    /// The node is the endpoint of its fragment's candidate edge, which leads
    /// to one of the node's tree children (marked by that child's `Parents`
    /// bit).
    Down,
    /// The node belongs to a level-`j` fragment but is not the candidate's
    /// endpoint.
    NotEndpoint,
    /// `*`: the node belongs to no level-`j` fragment.
    Absent,
}

/// The four per-node strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeStrings {
    /// The `Roots` string (one symbol per level `0..=ℓ`).
    pub roots: Vec<RootSym>,
    /// The `EndP` string.
    pub endp: Vec<EndpSym>,
    /// The `Parents` string: entry `j` is `true` iff the candidate edge of
    /// the level-`j` fragment containing this node's *parent* leads from the
    /// parent down to this node.
    pub parents: Vec<bool>,
    /// The `Or-EndP` string: entry `j` is `true` iff some node in this node's
    /// subtree, restricted to this node's level-`j` fragment, is the
    /// candidate's endpoint (the aggregation certifying EPS1 existence).
    pub or_endp: Vec<bool>,
}

impl NodeStrings {
    /// The string length `ℓ + 1`.
    pub fn len(&self) -> usize {
        self.roots.len()
    }

    /// `true` if the strings are empty (never produced by the marker).
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }

    /// The set of levels at which this node belongs to a fragment (`J(v)`).
    pub fn levels_present(&self) -> Vec<usize> {
        (0..self.roots.len())
            .filter(|&j| self.roots[j] != RootSym::Absent)
            .collect()
    }

    /// An empty-but-structurally-consistent string set of a given length
    /// (used only by fault injectors and tests).
    pub fn blank(len: usize) -> Self {
        NodeStrings {
            roots: vec![RootSym::Absent; len],
            endp: vec![EndpSym::Absent; len],
            parents: vec![false; len],
            or_endp: vec![false; len],
        }
    }

    /// Number of bits of a faithful encoding: two bits per `Roots`/`EndP`
    /// entry and one per `Parents`/`Or-EndP` entry.
    pub fn bits(&self) -> u64 {
        (self.roots.len() * 2 + self.endp.len() * 2 + self.parents.len() + self.or_endp.len())
            as u64
    }
}

/// Builds the strings of every node from a hierarchy with candidates.
///
/// `hierarchy` must contain candidates for every non-top fragment (as
/// produced by SYNC_MST); the strings have length `hierarchy.height() + 1`.
pub fn build_strings(
    g: &WeightedGraph,
    tree: &RootedTree,
    hierarchy: &Hierarchy,
) -> Vec<NodeStrings> {
    let ell = hierarchy.height() as usize;
    let len = ell + 1;
    let n = g.node_count();
    let mut out: Vec<NodeStrings> = (0..n).map(|_| NodeStrings::blank(len)).collect();

    for idx in 0..hierarchy.len() {
        let frag = hierarchy.fragment(idx);
        let j = frag.level as usize;
        for &v in &frag.nodes {
            out[v.index()].roots[j] = if frag.root == v {
                RootSym::Root
            } else {
                RootSym::NonRoot
            };
            out[v.index()].endp[j] = EndpSym::NotEndpoint;
        }
        if let Some(cand) = hierarchy.candidate(idx) {
            let edge = g.edge(cand);
            let (inside, outside) = if frag.contains(edge.u) {
                (edge.u, edge.v)
            } else {
                (edge.v, edge.u)
            };
            debug_assert!(!frag.contains(outside), "candidate must be outgoing");
            if tree.parent(inside) == Some(outside) {
                out[inside.index()].endp[j] = EndpSym::Up;
            } else {
                debug_assert_eq!(tree.parent(outside), Some(inside));
                out[inside.index()].endp[j] = EndpSym::Down;
                out[outside.index()].parents[j] = true;
            }
        }
    }

    // Or-EndP aggregation, bottom-up, restricted to same-fragment children.
    let order = tree.dfs_preorder();
    for j in 0..len {
        for &v in order.iter().rev() {
            let mut val = matches!(out[v.index()].endp[j], EndpSym::Up | EndpSym::Down);
            for &c in tree.children(v) {
                if out[c.index()].roots[j] == RootSym::NonRoot && out[c.index()].or_endp[j] {
                    val = true;
                }
            }
            out[v.index()].or_endp[j] = val;
        }
    }
    out
}

/// Everything the node-local string checks need to see: the node's own
/// strings, its tree parent's (if any) and its tree children's.
#[derive(Debug)]
pub struct StringNeighborhood<'a> {
    /// The node's own strings.
    pub own: &'a NodeStrings,
    /// The tree parent's strings (as identified through the component
    /// pointer), if the node is not the root.
    pub parent: Option<&'a NodeStrings>,
    /// The tree children's strings (neighbours whose parent pointer names
    /// this node).
    pub children: Vec<&'a NodeStrings>,
    /// Whether this node is the root of the candidate tree.
    pub is_tree_root: bool,
    /// An upper bound on `ℓ + 1` derived from the (verified) knowledge of `n`
    /// (`⌈log₂ n⌉ + 1`).
    pub max_len: usize,
}

/// Evaluates the RS and EPS legality conditions of §5.2–§5.3 at one node.
///
/// Returns `Err` with the name of the first violated condition.
pub fn check_strings(view: &StringNeighborhood<'_>) -> Result<(), &'static str> {
    let own = view.own;
    let len = own.len();

    // structural alignment of the four strings
    if own.endp.len() != len || own.parents.len() != len || own.or_endp.len() != len {
        return Err("strings have inconsistent lengths");
    }
    // RS1: bounded, agreed-upon length
    if len == 0 || len > view.max_len {
        return Err("RS1: string length out of range");
    }
    if let Some(p) = view.parent {
        if p.len() != len {
            return Err("RS1: length disagrees with parent");
        }
    }
    for c in &view.children {
        if c.len() != len {
            return Err("RS1: length disagrees with a child");
        }
    }
    // alignment between Roots and EndP: a level is absent in both or neither
    for j in 0..len {
        let absent_r = own.roots[j] == RootSym::Absent;
        let absent_e = own.endp[j] == EndpSym::Absent;
        if absent_r != absent_e {
            return Err("Roots/EndP absence mismatch");
        }
    }
    // RS0: no '1' after a '0'
    let mut seen_zero = false;
    for j in 0..len {
        match own.roots[j] {
            RootSym::NonRoot => seen_zero = true,
            RootSym::Root if seen_zero => return Err("RS0: root entry after a non-root entry"),
            _ => {}
        }
    }
    // RS2 / RS4
    if view.is_tree_root {
        if own.roots.contains(&RootSym::NonRoot) {
            return Err("RS2: tree root has a non-root entry");
        }
        if own.roots[len - 1] != RootSym::Root {
            return Err("RS2: tree root is not the root of the top fragment");
        }
    } else if own.roots[len - 1] != RootSym::NonRoot {
        return Err("RS4: non-root node's top entry is not 0");
    }
    // RS3
    if own.roots[0] != RootSym::Root {
        return Err("RS3: level-0 entry is not a root entry");
    }
    // RS5
    for j in 0..len {
        if own.roots[j] == RootSym::NonRoot {
            match view.parent {
                None => return Err("RS5: non-root fragment member has no tree parent"),
                Some(p) => {
                    if p.roots[j] == RootSym::Absent {
                        return Err("RS5: parent has no fragment at this level");
                    }
                }
            }
        }
    }
    // EPS0: if Parents_j(v) = 1 then the parent's EndP_j is Down
    for j in 0..len {
        if own.parents[j] {
            match view.parent {
                None => return Err("EPS0: Parents bit set at the tree root"),
                Some(p) => {
                    if p.endp[j] != EndpSym::Down {
                        return Err("EPS0: parent's EndP is not Down");
                    }
                }
            }
        }
    }
    // EPS1 (existence half, via Or-EndP): aggregation correctness and
    // positivity at every non-top fragment root
    for j in 0..len {
        let mut expected = matches!(own.endp[j], EndpSym::Up | EndpSym::Down);
        for c in &view.children {
            if c.roots[j] == RootSym::NonRoot && c.or_endp[j] {
                expected = true;
            }
        }
        if own.or_endp[j] != expected {
            return Err("EPS1: Or-EndP aggregation mismatch");
        }
        let is_top_fragment_root = view.is_tree_root && j == len - 1;
        if own.roots[j] == RootSym::Root && !is_top_fragment_root && !own.or_endp[j] {
            return Err("EPS1: fragment has no candidate endpoint");
        }
        if is_top_fragment_root && own.endp[j] != EndpSym::NotEndpoint {
            return Err("EPS1: the top fragment must have no candidate");
        }
    }
    // EPS2: a Down endpoint has exactly one child with the Parents bit set
    for j in 0..len {
        if own.endp[j] == EndpSym::Down {
            let marked = view.children.iter().filter(|c| c.parents[j]).count();
            if marked != 1 {
                return Err("EPS2: Down endpoint without exactly one marked child");
            }
        } else {
            // a child may only set its Parents bit when we are a Down endpoint
            if view.children.iter().any(|c| c.parents[j]) && own.endp[j] != EndpSym::Down {
                return Err("EPS2: child marks a candidate the parent does not have");
            }
        }
    }
    // EPS3
    for j in 0..len {
        if own.endp[j] == EndpSym::Up {
            if own.roots[j] != RootSym::Root {
                return Err("EPS3: Up endpoint is not its fragment's root");
            }
            if own.roots[(j + 1)..].contains(&RootSym::Root) {
                return Err("EPS3: Up endpoint is a root again at a higher level");
            }
        }
    }
    // EPS4
    for j in 0..len {
        if own.parents[j] {
            if own.roots[j] == RootSym::NonRoot {
                return Err("EPS4: Parents bit set but node is a fragment non-root");
            }
            if own.roots[(j + 1)..].contains(&RootSym::Root) {
                return Err("EPS4: Parents bit set but node is a root at a higher level");
            }
        }
    }
    // EPS5
    if !view.is_tree_root {
        let merges = (0..len).any(|j| own.parents[j] || own.endp[j] == EndpSym::Up);
        if !merges {
            return Err("EPS5: node never merges with its parent's fragment");
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync_mst::SyncMst;
    use smst_graph::generators::random_connected_graph;
    use smst_graph::NodeId;

    fn build(n: usize, seed: u64) -> (WeightedGraph, RootedTree, Vec<NodeStrings>) {
        let g = random_connected_graph(n, 3 * n, seed);
        let outcome = SyncMst.run(&g);
        let strings = build_strings(&g, &outcome.tree, &outcome.hierarchy);
        (g, outcome.tree, strings)
    }

    fn check_all(
        g: &WeightedGraph,
        tree: &RootedTree,
        strings: &[NodeStrings],
    ) -> Result<(), (NodeId, &'static str)> {
        let max_len = (g.node_count().max(2) as f64).log2().ceil() as usize + 1;
        for v in g.nodes() {
            let view = StringNeighborhood {
                own: &strings[v.index()],
                parent: tree.parent(v).map(|p| &strings[p.index()]),
                children: tree
                    .children(v)
                    .iter()
                    .map(|c| &strings[c.index()])
                    .collect(),
                is_tree_root: tree.root() == v,
                max_len,
            };
            check_strings(&view).map_err(|e| (v, e))?;
        }
        Ok(())
    }

    #[test]
    fn marker_strings_satisfy_all_conditions() {
        for seed in 0..8 {
            let (g, tree, strings) = build(20, seed);
            check_all(&g, &tree, &strings).unwrap_or_else(|(v, e)| {
                panic!("seed {seed}: node {v} violates {e}");
            });
        }
    }

    #[test]
    fn strings_are_logarithmically_sized() {
        let (_, _, strings) = build(200, 1);
        for s in &strings {
            assert!(s.len() <= 9, "length {} exceeds ⌈log 200⌉ + 1", s.len());
            assert!(s.bits() <= 6 * 9);
        }
    }

    #[test]
    fn corrupting_roots_breaks_a_condition() {
        let (g, tree, mut strings) = build(18, 3);
        // flip a Root into a NonRoot somewhere
        'outer: for s in strings.iter_mut().skip(1) {
            for j in 1..s.roots.len() {
                if s.roots[j] == RootSym::Root {
                    s.roots[j] = RootSym::NonRoot;
                    break 'outer;
                }
            }
        }
        assert!(check_all(&g, &tree, &strings).is_err());
    }

    #[test]
    fn corrupting_endp_breaks_a_condition() {
        // every node (n ≥ 2) is the endpoint of its singleton fragment's
        // candidate at level 0; erasing that mark must be detected
        let (g, tree, mut strings) = build(18, 4);
        assert!(matches!(strings[1].endp[0], EndpSym::Up | EndpSym::Down));
        strings[1].endp[0] = EndpSym::NotEndpoint;
        assert!(check_all(&g, &tree, &strings).is_err());
    }

    #[test]
    fn spurious_parents_bit_breaks_a_condition() {
        let (g, tree, mut strings) = build(18, 5);
        // set a Parents bit at a node whose parent has no matching Down mark
        let mut target = None;
        'outer: for v in g.nodes() {
            if let Some(p) = tree.parent(v) {
                for j in 0..strings[v.index()].parents.len() {
                    if !strings[v.index()].parents[j] && strings[p.index()].endp[j] != EndpSym::Down
                    {
                        target = Some((v, j));
                        break 'outer;
                    }
                }
            }
        }
        let (v, j) = target.expect("some unmarkable (node, level) pair exists");
        strings[v.index()].parents[j] = true;
        assert!(check_all(&g, &tree, &strings).is_err());
    }

    #[test]
    fn truncated_strings_are_rejected() {
        let (g, tree, mut strings) = build(18, 6);
        strings[2].roots.pop();
        assert!(check_all(&g, &tree, &strings).is_err());
    }

    #[test]
    fn levels_present_matches_roots() {
        let (_, _, strings) = build(20, 7);
        for s in &strings {
            let levels = s.levels_present();
            assert!(levels.contains(&0), "every node has a singleton fragment");
            for &j in &levels {
                assert_ne!(s.roots[j], RootSym::Absent);
            }
        }
    }

    #[test]
    fn blank_strings_helpers() {
        let b = NodeStrings::blank(5);
        assert_eq!(b.len(), 5);
        assert!(!b.is_empty());
        assert!(b.levels_present().is_empty());
    }
}
