//! A facade tying the marker and the verifier together, plus the experiment
//! drivers used by the examples, the integration tests and the benches.

use crate::faults::{corrupt, FaultKind};
use crate::labels::CoreLabel;
use crate::marker::{ConstructionReport, Marker};
use crate::verifier::CoreVerifier;
use smst_labeling::scheme::{Instance, MarkError};
use smst_sim::{AsyncRunner, Daemon, DetectionReport, FaultPlan, MemoryUsage, Network, SyncRunner};

/// The paper's MST proof labeling scheme: `O(log n)` bits per node,
/// polylogarithmic detection time, `O(n)`-time marker.
#[derive(Debug, Clone, Copy, Default)]
pub struct MstVerificationScheme;

impl MstVerificationScheme {
    /// Creates the scheme.
    pub fn new() -> Self {
        MstVerificationScheme
    }

    /// Runs the marker on a correct instance.
    ///
    /// # Errors
    ///
    /// Returns a [`MarkError`] if the instance's candidate subgraph is not an
    /// MST.
    pub fn mark(
        &self,
        instance: &Instance,
    ) -> Result<(Vec<CoreLabel>, ConstructionReport), MarkError> {
        Marker.label(instance)
    }

    /// Builds the verifier program for an instance and a label assignment
    /// (the labels may come from the marker or from an adversary).
    pub fn verifier(&self, instance: &Instance, labels: Vec<CoreLabel>) -> CoreVerifier {
        CoreVerifier::new(instance.graph.clone(), instance.components.clone(), labels)
    }

    /// A generous synchronous detection-time budget, polylogarithmic in `n`
    /// (used as the time-out of the experiment drivers).
    pub fn sync_budget(n: usize) -> usize {
        let log_n = (n.max(2) as f64).log2().ceil() as usize;
        800 * log_n.pow(3) + 800
    }

    /// An asynchronous detection-time budget (time units).
    pub fn async_budget(n: usize, max_degree: usize) -> usize {
        Self::sync_budget(n) * (max_degree.max(1)) / 2 + 200
    }
}

/// The outcome of one fault-detection experiment.
#[derive(Debug, Clone)]
pub struct FaultExperimentOutcome {
    /// Rounds the verifier ran before the faults were injected.
    pub warmup_rounds: usize,
    /// The detection report (time, alarming nodes, distances).
    pub report: DetectionReport,
    /// Memory usage of the verifier's registers at injection time.
    pub memory: MemoryUsage,
}

/// Runs the synchronous verifier on a correct, marker-labelled instance,
/// injects faults of the given kind at the planned nodes, and measures the
/// detection time and detection distance.
///
/// # Panics
///
/// Panics if the instance is not a correct MST instance (the experiment
/// measures detection of *injected* faults, so it starts from a correct
/// configuration).
pub fn run_sync_fault_experiment(
    instance: &Instance,
    plan: &FaultPlan,
    kind: FaultKind,
    seed: u64,
) -> FaultExperimentOutcome {
    let scheme = MstVerificationScheme::new();
    let (labels, _) = scheme
        .mark(instance)
        .expect("fault experiments start from a correct instance");
    let verifier = scheme.verifier(instance, labels);
    let n = instance.node_count();
    let budget = MstVerificationScheme::sync_budget(n);

    let net = verifier.network();
    let mut runner = SyncRunner::new(&verifier, net);
    // let the trains reach steady state (no alarms may occur here)
    runner.run_rounds(budget);
    let warmup_rounds = runner.rounds();
    assert!(
        runner.network().alarming_nodes(&verifier).is_empty(),
        "a correct instance must not raise alarms during warm-up"
    );
    let memory = MemoryUsage::from_bits(runner.network().memory_bits(&verifier));

    // inject the faults
    let mut i = 0u64;
    plan.apply(runner.network_mut(), |_v, state| {
        corrupt(state, kind, seed.wrapping_add(i));
        i += 1;
    });

    let report = match runner.run_until_alarm(4 * budget) {
        Some(t) => DetectionReport::from_alarms(
            instance.graph(),
            t,
            runner.network().alarming_nodes(&verifier),
            plan.nodes(),
        ),
        None => DetectionReport::not_detected(),
    };
    FaultExperimentOutcome {
        warmup_rounds,
        report,
        memory,
    }
}

/// Asynchronous variant of [`run_sync_fault_experiment`] under the given
/// daemon.
pub fn run_async_fault_experiment(
    instance: &Instance,
    plan: &FaultPlan,
    kind: FaultKind,
    daemon: Daemon,
    seed: u64,
) -> FaultExperimentOutcome {
    let scheme = MstVerificationScheme::new();
    let (labels, _) = scheme
        .mark(instance)
        .expect("fault experiments start from a correct instance");
    let verifier = scheme.verifier(instance, labels);
    let n = instance.node_count();
    let budget = MstVerificationScheme::async_budget(n, instance.graph().max_degree());

    let net = verifier.network();
    let mut runner = AsyncRunner::new(&verifier, net, daemon);
    runner.run_time_units(budget);
    let warmup_rounds = runner.time_units();
    assert!(
        runner.network().alarming_nodes(&verifier).is_empty(),
        "a correct instance must not raise alarms during warm-up"
    );
    let memory = MemoryUsage::from_bits(runner.network().memory_bits(&verifier));

    let mut i = 0u64;
    plan.apply(runner.network_mut(), |_v, state| {
        corrupt(state, kind, seed.wrapping_add(i));
        i += 1;
    });

    let report = match runner.run_until_alarm(4 * budget) {
        Some(t) => DetectionReport::from_alarms(
            instance.graph(),
            t,
            runner.network().alarming_nodes(&verifier),
            plan.nodes(),
        ),
        None => DetectionReport::not_detected(),
    };
    FaultExperimentOutcome {
        warmup_rounds,
        report,
        memory,
    }
}

/// Runs the synchronous verifier on an instance whose candidate subgraph is
/// **not** an MST (with labels taken from an adversary or from a stale
/// marker) and returns the number of rounds until the first alarm.
pub fn rounds_until_rejection(
    instance: &Instance,
    labels: Vec<CoreLabel>,
    max_rounds: usize,
) -> Option<usize> {
    let verifier = MstVerificationScheme::new().verifier(instance, labels);
    let net: Network<CoreVerifier> = verifier.network();
    let mut runner = SyncRunner::new(&verifier, net);
    runner.run_until_alarm(max_rounds)
}

/// Convenience extension used by the drivers above.
trait InstanceExt {
    fn graph(&self) -> &smst_graph::WeightedGraph;
}

impl InstanceExt for Instance {
    fn graph(&self) -> &smst_graph::WeightedGraph {
        &self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smst_graph::generators::random_connected_graph;
    use smst_graph::mst::kruskal;
    use smst_graph::NodeId;

    fn mst_instance(n: usize, m: usize, seed: u64) -> Instance {
        let g = random_connected_graph(n, m, seed);
        let tree = kruskal(&g).rooted_at(&g, NodeId(0)).unwrap();
        Instance::from_tree(g, &tree)
    }

    #[test]
    fn sp_distance_fault_is_detected_quickly_and_locally() {
        let inst = mst_instance(20, 50, 3);
        let plan = FaultPlan::single(NodeId(7));
        let outcome = run_sync_fault_experiment(&inst, &plan, FaultKind::SpDistance, 1);
        assert!(outcome.report.detected);
        // a structural (1-round checkable) fault is caught within one round
        // at distance at most 1
        assert!(outcome.report.detection_time.unwrap() <= 2);
        assert!(outcome.report.max_detection_distance <= 1);
    }

    #[test]
    fn stored_piece_fault_is_detected() {
        let inst = mst_instance(24, 60, 4);
        let plan = FaultPlan::single(NodeId(5));
        let outcome = run_sync_fault_experiment(&inst, &plan, FaultKind::StoredPieceWeight, 2);
        assert!(
            outcome.report.detected,
            "a corrupted piece weight must be detected"
        );
    }

    #[test]
    fn train_buffer_scrambling_is_tolerated() {
        // the dynamic train state is self-healing: scrambling it must not
        // produce a *permanent* rejection, and the network must return to
        // all-accept
        let inst = mst_instance(16, 40, 5);
        let scheme = MstVerificationScheme::new();
        let (labels, _) = scheme.mark(&inst).unwrap();
        let verifier = scheme.verifier(&inst, labels);
        let budget = MstVerificationScheme::sync_budget(16);
        let net = verifier.network();
        let mut runner = SyncRunner::new(&verifier, net);
        runner.run_rounds(budget);
        let plan = FaultPlan::random(16, 3, 9);
        let mut i = 0;
        plan.apply(runner.network_mut(), |_v, s| {
            corrupt(s, FaultKind::TrainBuffers, 100 + i);
            i += 1;
        });
        runner.run_rounds(2 * budget);
        assert!(
            runner.network().alarming_nodes(&verifier).is_empty(),
            "scrambled train buffers must heal without a permanent alarm"
        );
    }

    #[test]
    fn non_mst_candidate_is_rejected() {
        // swap a tree edge for a heavier non-tree edge and keep the stale labels
        let g = random_connected_graph(14, 40, 6);
        let mst = kruskal(&g);
        let tree = mst.rooted_at(&g, NodeId(0)).unwrap();
        let correct = Instance::from_tree(g.clone(), &tree);
        let (labels, _) = MstVerificationScheme::new().mark(&correct).unwrap();

        let non_tree: Vec<_> = g
            .edge_entries()
            .map(|(e, _)| e)
            .filter(|e| !mst.contains(*e))
            .collect();
        let mut bad = None;
        'search: for &extra in &non_tree {
            for i in 0..mst.edges().len() {
                let mut edges = mst.edges().to_vec();
                edges[i] = extra;
                if let Ok(t) = smst_graph::RootedTree::from_edges(&g, &edges, NodeId(0)) {
                    let candidate = Instance::from_tree(g.clone(), &t);
                    if !candidate.satisfies_mst() {
                        bad = Some(candidate);
                        break 'search;
                    }
                }
            }
        }
        let bad = bad.expect("a spanning non-MST tree exists");
        let budget = MstVerificationScheme::sync_budget(14);
        let detected = rounds_until_rejection(&bad, labels, 8 * budget);
        assert!(detected.is_some(), "a non-MST candidate must be rejected");
    }
}
