//! # smst-core
//!
//! The paper's primary contribution: a memory-optimal (`O(log n)` bits per
//! node) self-stabilizing proof labeling scheme for MST with polylogarithmic
//! detection time, together with the `O(n)`-time, `O(log n)`-memory
//! synchronous MST construction (SYNC_MST) that doubles as its distributed
//! marker.
//!
//! Module map (mirroring the paper's sections):
//!
//! * [`sync_mst`] — §4: the synchronous fragment-merging construction; it
//!   produces the MST, the hierarchy of *active* fragments and the candidate
//!   (minimum outgoing) edges, with ideal-time and memory accounting.
//! * [`strings`] — §5: the `Roots` / `EndP` / `Parents` / `Or-EndP` strings
//!   that represent the hierarchy and candidate function distributively, and
//!   their local legality conditions RS0–RS5 and EPS0–EPS5.
//! * [`partition`] — §6: top/bottom fragments, the red/blue/large colouring,
//!   the `Top` and `Bottom` partitions, and the DFS placement of the pieces
//!   of information `I(F)` on the nodes of each part.
//! * [`labels`] — the complete `O(log n)`-bit node label and its bit
//!   accounting.
//! * [`marker`] — §5.4 / §6.3: the marker algorithm assigning the labels,
//!   with its `O(n)` construction-time accounting.
//! * [`verifier`] — §7–§8: the self-stabilizing verifier, implemented as a
//!   [`smst_sim::NodeProgram`]: structural 1-round checks, the per-part
//!   *trains* circulating the pieces, the Ask/Show/Want comparison mechanism
//!   and the minimality checks C1/C2.
//! * [`faults`] — corruption helpers used by the fault-detection experiments.
//! * [`scheme`] — a facade tying marker and verifier together and the
//!   experiment drivers (detection time, detection distance, memory).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod faults;
pub mod labels;
pub mod marker;
pub mod partition;
pub mod scheme;
pub mod strings;
pub mod sync_mst;
pub mod verifier;

pub use labels::{CoreLabel, PieceInfo};
pub use marker::{ConstructionReport, Marker};
pub use scheme::MstVerificationScheme;
pub use sync_mst::{SyncMst, SyncMstOutcome};
pub use verifier::{CoreState, CoreVerifier};
