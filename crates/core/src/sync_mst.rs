//! SYNC_MST (§4): a synchronous MST construction that is simultaneously
//! `O(n)`-time and `O(log n)`-memory.
//!
//! The algorithm proceeds in phases. At the start of phase `i` every fragment
//! root counts its fragment (Procedure `Count_Size`, budgeted `2^{i+2} − 1`
//! rounds); a root is **active** in phase `i` iff the count finishes, i.e.
//! `|F| ≤ 2^{i+1} − 1` (Definition 4.1), in which case its level is `i`.
//! Active fragments then search for their minimum outgoing edge
//! (`Find_Min_Out_Edge`, a Wave&Echo), re-orient their edges towards its
//! endpoint and hook onto the other endpoint; a mutual pair of fragments
//! selecting the same edge merges with the higher-identity endpoint becoming
//! the root (the "handshake"/pivot rule). Phase `i` occupies rounds
//! `[11·2^i, 22·2^i)`, so the total time is `O(n)` (Lemma 4.1, Theorem 4.4).
//!
//! This module executes the algorithm at fragment granularity while keeping
//! the paper's phase timing for the ideal-time accounting, and records the
//! *active fragments* and their selected (candidate) edges — exactly the
//! hierarchy `H_M` and candidate function `χ_M` that the marker of §5.1 uses.

use smst_graph::weight::bits_for;
use smst_graph::{EdgeId, Fragment, Hierarchy, NodeId, RootedTree, WeightedGraph};
use std::collections::{BTreeSet, HashMap};

/// One active fragment recorded during the execution: its node set, level
/// (= the phase at which it was active) and selected candidate edge.
#[derive(Debug, Clone)]
pub struct ActiveFragment {
    /// The nodes of the fragment.
    pub nodes: BTreeSet<NodeId>,
    /// The phase at which the fragment was active (its level).
    pub level: u32,
    /// The fragment's minimum outgoing edge, selected during the phase
    /// (`None` only for the final spanning fragment).
    pub candidate: Option<EdgeId>,
}

/// The outcome of running SYNC_MST.
#[derive(Debug, Clone)]
pub struct SyncMstOutcome {
    /// The constructed MST, rooted at the final surviving root.
    pub tree: RootedTree,
    /// The hierarchy of active fragments (including the final spanning
    /// fragment), with candidate edges attached.
    pub hierarchy: Hierarchy,
    /// The number of phases executed (the height of the hierarchy).
    pub phases: u32,
    /// Ideal-time rounds charged according to the paper's phase schedule
    /// (phase `i` spans rounds `[11·2^i, 22·2^i)`).
    pub rounds: u64,
    /// Memory bits per node used by the construction (Observation 4.3).
    pub memory_bits_per_node: u64,
}

/// The SYNC_MST construction algorithm.
#[derive(Debug, Clone, Copy, Default)]
pub struct SyncMst;

impl SyncMst {
    /// Creates the algorithm.
    pub fn new() -> Self {
        SyncMst
    }

    /// Runs the construction on a connected weighted graph.
    ///
    /// # Panics
    ///
    /// Panics if the graph is empty or disconnected (the paper assumes a
    /// connected network).
    pub fn run(&self, g: &WeightedGraph) -> SyncMstOutcome {
        self.run_with(g, |e| g.composite_weight(e, false), None)
    }

    /// Runs the construction using the composite weights ω′ with the
    /// candidate-tree indicator of the given tree, re-rooting the outcome at
    /// that tree's root.
    ///
    /// This is what the marker uses (§5.1): when the candidate tree `T` is an
    /// MST of `G` under ω, it is the unique MST under ω′ with `T`'s indicator,
    /// so SYNC_MST reconstructs exactly `T` and the hierarchy / candidate
    /// function it records is a hierarchy *for `T`*.
    ///
    /// # Panics
    ///
    /// Panics if the graph is empty or disconnected.
    pub fn run_for_candidate(&self, g: &WeightedGraph, tree: &RootedTree) -> SyncMstOutcome {
        let in_tree: std::collections::HashSet<EdgeId> = tree.edges().into_iter().collect();
        self.run_with(
            g,
            |e| g.composite_weight(e, in_tree.contains(&e)),
            Some(tree.root()),
        )
    }

    fn run_with<W>(
        &self,
        g: &WeightedGraph,
        weight: W,
        root_override: Option<NodeId>,
    ) -> SyncMstOutcome
    where
        W: Fn(EdgeId) -> smst_graph::CompositeWeight,
    {
        let n = g.node_count();
        assert!(n > 0, "SYNC_MST requires a non-empty graph");
        assert!(g.is_connected(), "SYNC_MST requires a connected graph");

        // fragment state: component representative per node, fragment root,
        // fragment level, member sets
        let mut comp: Vec<usize> = (0..n).collect();
        let mut members: HashMap<usize, BTreeSet<NodeId>> =
            (0..n).map(|v| (v, BTreeSet::from([NodeId(v)]))).collect();
        let mut root_of: HashMap<usize, NodeId> = (0..n).map(|v| (v, NodeId(v))).collect();
        let mut level_of: HashMap<usize, u32> = (0..n).map(|v| (v, 0)).collect();

        let mut active_fragments: Vec<ActiveFragment> = Vec::new();
        let mut tree_edges: Vec<EdgeId> = Vec::new();
        let mut phase: u32 = 0;
        let final_root;

        loop {
            // Count_Size: a fragment is active in this phase iff its size fits
            // the budget and its level equals the phase.
            let frags: Vec<usize> = members.keys().copied().collect();
            let mut active: Vec<usize> = Vec::new();
            for &f in &frags {
                let size = members[&f].len() as u64;
                if size < (1u64 << (phase + 1)) {
                    // count succeeded: the root keeps level = phase and is active
                    level_of.insert(f, phase);
                    active.push(f);
                } else {
                    // count overflowed: level is bumped, fragment sits this phase out
                    level_of.insert(f, phase + 1);
                }
            }

            // termination: a single fragment spanning the graph whose count
            // succeeded ends the algorithm at the end of Count_Size
            if members.len() == 1 {
                let f = frags[0];
                if (members[&f].len() as u64) < (1u64 << (phase + 1)) {
                    // record the spanning fragment as the top of the hierarchy
                    active_fragments.push(ActiveFragment {
                        nodes: members[&f].clone(),
                        level: phase,
                        candidate: None,
                    });
                    final_root = root_of[&f];
                    break;
                }
                // otherwise keep doubling the budget (still O(n) total)
                phase += 1;
                continue;
            }

            // Find_Min_Out_Edge for every active fragment
            let mut selected: HashMap<usize, EdgeId> = HashMap::new();
            for &f in &active {
                let min_edge = members[&f]
                    .iter()
                    .flat_map(|&v| g.incident_edges(v).iter().copied())
                    .filter(|&e| {
                        let edge = g.edge(e);
                        comp[edge.u.index()] != comp[edge.v.index()]
                            && (comp[edge.u.index()] == f || comp[edge.v.index()] == f)
                    })
                    .min_by_key(|&e| weight(e));
                if let Some(e) = min_edge {
                    selected.insert(f, e);
                    active_fragments.push(ActiveFragment {
                        nodes: members[&f].clone(),
                        level: phase,
                        candidate: Some(e),
                    });
                }
            }

            // Merging: every active fragment hooks onto the other endpoint of
            // its selected edge. The connected components of the "selected
            // edge" relation merge into one fragment each.
            let mut new_rep: HashMap<usize, usize> = frags.iter().map(|&f| (f, f)).collect();
            let find = |map: &HashMap<usize, usize>, mut x: usize| {
                while map[&x] != x {
                    x = map[&x];
                }
                x
            };
            for (&f, &e) in &selected {
                let edge = g.edge(e);
                let other = if comp[edge.u.index()] == f {
                    comp[edge.v.index()]
                } else {
                    comp[edge.u.index()]
                };
                let (ra, rb) = (find(&new_rep, f), find(&new_rep, other));
                if ra != rb {
                    new_rep.insert(ra, rb);
                    tree_edges.push(e);
                }
            }

            // compute the new fragment groups
            let mut groups: HashMap<usize, Vec<usize>> = HashMap::new();
            for &f in &frags {
                groups.entry(find(&new_rep, f)).or_default().push(f);
            }

            // new root per merged group: if the group contains a fragment
            // that selected no edge this phase (it was passive), its root
            // survives; otherwise the mutual pair of the minimum selected
            // edge in the group decides — the higher-identity endpoint of
            // that edge becomes the new root (the handshake/pivot rule).
            let mut new_members: HashMap<usize, BTreeSet<NodeId>> = HashMap::new();
            let mut new_roots: HashMap<usize, NodeId> = HashMap::new();
            let mut new_levels: HashMap<usize, u32> = HashMap::new();
            for (rep, group) in &groups {
                let mut set = BTreeSet::new();
                let mut max_level = 0;
                for &f in group {
                    set.extend(members[&f].iter().copied());
                    max_level = max_level.max(level_of[&f]);
                }
                let passive_root = group
                    .iter()
                    .find(|f| !selected.contains_key(f))
                    .map(|f| root_of[f]);
                let root = match passive_root {
                    Some(r) => r,
                    None => {
                        // all fragments in the group were active; the group's
                        // minimum selected edge is shared by a mutual pair
                        let min_edge = group
                            .iter()
                            .filter_map(|f| selected.get(f))
                            .copied()
                            .min_by_key(|&e| weight(e))
                            .expect("active group selects at least one edge");
                        let edge = g.edge(min_edge);
                        if g.id(edge.u) > g.id(edge.v) {
                            edge.u
                        } else {
                            edge.v
                        }
                    }
                };
                new_members.insert(*rep, set);
                new_roots.insert(*rep, root);
                new_levels.insert(*rep, max_level.max(phase + 1));
            }
            for c in comp.iter_mut() {
                *c = find(&new_rep, *c);
            }
            members = new_members;
            root_of = new_roots;
            level_of = new_levels;
            phase += 1;
        }

        let tree = RootedTree::from_edges(g, &tree_edges, root_override.unwrap_or(final_root))
            .expect("SYNC_MST produces a spanning tree of a connected graph");

        // build the hierarchy (active fragments + singletons are already the
        // level-0 active fragments)
        let mut hierarchy_fragments: Vec<Fragment> = Vec::new();
        let mut candidates: Vec<Option<EdgeId>> = Vec::new();
        for af in &active_fragments {
            hierarchy_fragments.push(Fragment::new(&tree, af.nodes.iter().copied(), af.level));
            candidates.push(af.candidate);
        }
        let mut hierarchy = Hierarchy::from_fragments(hierarchy_fragments);
        for (i, cand) in candidates.into_iter().enumerate() {
            if let Some(e) = cand {
                hierarchy.set_candidate(i, e);
            }
        }

        // ideal-time accounting: phases 0..=phase each occupy [11·2^i, 22·2^i)
        let rounds: u64 = 22u64 << phase;
        // memory: level + root-ID estimate + parent ID + candidate port +
        // stage flags + echo variable (Observation 4.3)
        let max_id = g.nodes().map(|v| g.id(v)).max().unwrap_or(1);
        let memory_bits_per_node = 3 * u64::from(bits_for(max_id))
            + u64::from(bits_for(n as u64)) * 2
            + u64::from(bits_for(g.max_degree() as u64))
            + 8;

        SyncMstOutcome {
            tree,
            hierarchy,
            phases: phase,
            rounds,
            memory_bits_per_node,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use smst_graph::generators::{complete_graph, path_graph, random_connected_graph};
    use smst_graph::mst::{is_mst, kruskal};

    #[test]
    fn builds_the_unique_mst() {
        for seed in 0..6 {
            let g = random_connected_graph(30, 80, seed);
            let outcome = SyncMst.run(&g);
            let mut edges = outcome.tree.edges();
            edges.sort_unstable();
            assert_eq!(edges, kruskal(&g).edges(), "seed {seed}");
        }
    }

    #[test]
    fn hierarchy_is_valid_and_minimal() {
        let g = random_connected_graph(24, 60, 7);
        let outcome = SyncMst.run(&g);
        outcome
            .hierarchy
            .validate(&g, &outcome.tree)
            .expect("hierarchy satisfies Definition 5.1");
        outcome
            .hierarchy
            .validate_candidate_function(&g, &outcome.tree)
            .expect("candidates form a candidate function");
        outcome
            .hierarchy
            .validate_minimality(&g, &outcome.tree)
            .expect("candidates are minimum outgoing edges");
    }

    #[test]
    fn hierarchy_height_is_logarithmic() {
        for n in [4usize, 16, 64, 200] {
            let g = random_connected_graph(n, 3 * n, 3);
            let outcome = SyncMst.run(&g);
            let bound = (n as f64).log2().ceil() as u32 + 1;
            assert!(
                outcome.hierarchy.height() <= bound,
                "n={n}: height {} exceeds {bound}",
                outcome.hierarchy.height()
            );
        }
    }

    #[test]
    fn rounds_are_linear_in_n() {
        // the phase schedule charges 22·2^phases rounds; fragment sizes double
        // per phase so this is O(n)
        for n in [8usize, 32, 128, 512] {
            let g = path_graph(n, 5);
            let outcome = SyncMst.run(&g);
            assert!(
                outcome.rounds <= 100 * n as u64,
                "n={n}: {} rounds is not O(n)",
                outcome.rounds
            );
            assert!(outcome.rounds >= n as u64 / 2);
        }
    }

    #[test]
    fn memory_is_logarithmic() {
        let g = random_connected_graph(256, 600, 1);
        let outcome = SyncMst.run(&g);
        assert!(outcome.memory_bits_per_node <= 8 * 8 + 40);
    }

    #[test]
    fn works_on_complete_and_path_graphs() {
        let g = complete_graph(12, 2);
        let outcome = SyncMst.run(&g);
        assert!(is_mst(&g, &outcome.tree.edges()));
        let p = path_graph(17, 3);
        let outcome = SyncMst.run(&p);
        assert_eq!(outcome.tree.edges().len(), 16);
    }

    #[test]
    fn single_node_graph() {
        let g = WeightedGraph::with_nodes(1);
        let outcome = SyncMst.run(&g);
        assert_eq!(outcome.tree.node_count(), 1);
        assert_eq!(outcome.hierarchy.height(), 0);
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn rejects_disconnected_graph() {
        let mut g = WeightedGraph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1), 1).unwrap();
        let _ = SyncMst.run(&g);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        #[test]
        fn matches_kruskal_and_valid_hierarchy(n in 2usize..40, seed in 0u64..200) {
            let g = random_connected_graph(n, 3 * n, seed);
            let outcome = SyncMst.run(&g);
            let mut edges = outcome.tree.edges();
            edges.sort_unstable();
            let expected = kruskal(&g);
            prop_assert_eq!(edges, expected.edges());
            prop_assert!(outcome.hierarchy.validate(&g, &outcome.tree).is_ok());
            prop_assert!(outcome.hierarchy.validate_minimality(&g, &outcome.tree).is_ok());
        }
    }
}
