//! The complete `O(log n)`-bit node label of the paper's scheme.
//!
//! Each node's label is the concatenation of:
//!
//! * the Example SP / NumK fields (spanning tree + knowledge of `n`, §2.6);
//! * the `Roots`/`EndP`/`Parents`/`Or-EndP` strings (§5.2–§5.3);
//! * for each of the two partitions (`Top` and `Bottom`, §6.1): the identity
//!   of the node's part root, the node's depth inside the part, the claimed
//!   bound on the part's diameter, the number of pieces circulating in the
//!   part, and the (at most two) pieces of information `I(F)` the node stores
//!   permanently together with their slots in the part's cycle (§6.2).
//!
//! Every component is `O(log n)` bits, so the whole label is `O(log n)` bits —
//! the memory-optimality claim of the paper, which the `fig_memory`
//! experiment measures against the `O(log² n)`-bit baseline.

use crate::strings::NodeStrings;
use smst_graph::weight::{bits_for, CompositeWeight};
use smst_labeling::SpLabel;

/// The piece of information `I(F) = ID(F) ∘ ω(F)` of a fragment (§3.4/§6):
/// the identity of the fragment's root, its level, and the (composite) weight
/// of its minimum outgoing edge (`None` only for the top fragment).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PieceInfo {
    /// Identity of the fragment's root node.
    pub root_id: u64,
    /// The fragment's level.
    pub level: u32,
    /// The composite weight of the fragment's minimum outgoing edge.
    pub min_out: Option<CompositeWeight>,
}

impl PieceInfo {
    /// Number of bits of a faithful encoding.
    pub fn bits(max_id: u64, max_weight: u64, levels: usize) -> u64 {
        u64::from(bits_for(max_id))
            + u64::from(bits_for(levels as u64))
            + (u64::from(bits_for(max_weight)) + 2 * u64::from(bits_for(max_id)) + 1)
            + 1
    }
}

/// A permanently stored piece together with its slot in the part's cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoredPiece {
    /// The slot (DFS index) of the piece in the part's cycle.
    pub slot: u8,
    /// The piece itself.
    pub piece: PieceInfo,
}

/// The per-partition portion of the label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartLabel {
    /// Identity of the root of the node's part.
    pub part_root_id: u64,
    /// The node's hop depth inside the part's subtree.
    pub depth_in_part: u64,
    /// Claimed upper bound on the part's diameter (must be `O(log n)`).
    pub diameter_bound: u64,
    /// The number of piece slots circulating in the part.
    pub piece_count: u8,
    /// The pieces stored permanently at this node (at most two).
    pub stored: Vec<StoredPiece>,
}

impl PartLabel {
    /// Number of bits of a faithful encoding.
    pub fn bits(&self, max_id: u64, max_weight: u64, levels: usize, n: usize) -> u64 {
        u64::from(bits_for(max_id))
            + 2 * u64::from(bits_for(n as u64))
            + 8
            + self.stored.len() as u64 * (8 + PieceInfo::bits(max_id, max_weight, levels))
    }
}

/// The complete node label assigned by the marker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreLabel {
    /// Example SP fields (root identity, distance, own identity, parent
    /// identity).
    pub sp: SpLabel,
    /// The claimed number of nodes (Example NumK).
    pub n_claim: u64,
    /// The number of nodes in this node's subtree (Example NumK aggregation).
    pub subtree_count: u64,
    /// The hierarchy strings of §5.
    pub strings: NodeStrings,
    /// The delimiter of §8 splitting `J(v)` into bottom and top levels: the
    /// smallest level at which this node's fragment is a *top* fragment
    /// (fragment sizes grow along the containment chain, so a single
    /// threshold suffices).
    pub top_min_level: u8,
    /// The `Top`-partition portion.
    pub top_part: PartLabel,
    /// The `Bottom`-partition portion.
    pub bottom_part: PartLabel,
}

impl CoreLabel {
    /// Number of bits of a faithful encoding of the whole label.
    pub fn bits(&self, max_id: u64, max_weight: u64, n: usize) -> u64 {
        let levels = self.strings.len();
        let sp_bits = u64::from(bits_for(max_id)) * 3 + u64::from(bits_for(n as u64)) + 2;
        sp_bits
            + 2 * u64::from(bits_for(n as u64))
            + self.strings.bits()
            + 8
            + self.top_part.bits(max_id, max_weight, levels, n)
            + self.bottom_part.bits(max_id, max_weight, levels, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strings::NodeStrings;

    fn sample_label(levels: usize, stored: usize) -> CoreLabel {
        let piece = PieceInfo {
            root_id: 3,
            level: 1,
            min_out: Some(CompositeWeight::new(10, true, 1, 2)),
        };
        let part = PartLabel {
            part_root_id: 1,
            depth_in_part: 2,
            diameter_bound: 8,
            piece_count: 4,
            stored: (0..stored)
                .map(|i| StoredPiece {
                    slot: i as u8,
                    piece,
                })
                .collect(),
        };
        CoreLabel {
            sp: SpLabel {
                root_id: 0,
                dist: 3,
                own_id: 7,
                parent_id: Some(2),
            },
            n_claim: 64,
            subtree_count: 5,
            strings: NodeStrings::blank(levels),
            top_min_level: 2,
            top_part: part.clone(),
            bottom_part: part,
        }
    }

    #[test]
    fn label_bits_scale_logarithmically() {
        // with ℓ + 1 = log n levels and at most 4 stored pieces, the label is
        // a constant number of log n-bit words
        let n = 1024usize;
        let levels = 11;
        let label = sample_label(levels, 2);
        let bits = label.bits(n as u64, 1_000_000, n);
        let log_n = (n as f64).log2();
        assert!(
            (bits as f64) < 60.0 * log_n + 100.0,
            "label of {bits} bits exceeds the O(log n) budget"
        );
    }

    #[test]
    fn more_stored_pieces_cost_more_bits() {
        let a = sample_label(8, 0).bits(100, 100, 100);
        let b = sample_label(8, 2).bits(100, 100, 100);
        assert!(b > a);
    }

    #[test]
    fn piece_bits_positive() {
        assert!(PieceInfo::bits(100, 100, 8) > 0);
    }
}
