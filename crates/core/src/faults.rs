//! Transient-fault corruption helpers for the fault-detection experiments.
//!
//! The paper's adversary may rewrite any subset of node registers. These
//! helpers implement representative corruptions of a [`CoreState`]: label
//! strings, the SP distance, stored pieces (the fragment weights the
//! minimality checks rely on), the partition metadata and the train buffers.
//! The experiment harnesses pick nodes with a
//! [`smst_sim::FaultPlan`] and apply one of these mutators.

use crate::strings::{EndpSym, RootSym};
use crate::verifier::CoreState;
use smst_rng::{Rng, SeedableRng, StdRng};

/// The kinds of register corruption the experiments inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Flip an entry of the `Roots` string.
    RootsString,
    /// Erase an `EndP` endpoint mark.
    EndpString,
    /// Corrupt the SP distance field.
    SpDistance,
    /// Corrupt the weight inside a permanently stored piece.
    StoredPieceWeight,
    /// Corrupt the partition metadata (part root identity).
    PartRoot,
    /// Scramble the dynamic train buffers (self-healing state).
    TrainBuffers,
}

impl FaultKind {
    /// All kinds, for sweep experiments.
    pub fn all() -> [FaultKind; 6] {
        [
            FaultKind::RootsString,
            FaultKind::EndpString,
            FaultKind::SpDistance,
            FaultKind::StoredPieceWeight,
            FaultKind::PartRoot,
            FaultKind::TrainBuffers,
        ]
    }
}

/// Applies one corruption of the given kind to a node register.
pub fn corrupt(state: &mut CoreState, kind: FaultKind, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    match kind {
        FaultKind::RootsString => {
            let len = state.label.strings.roots.len();
            if len > 0 {
                let j = rng.gen_range(0..len);
                state.label.strings.roots[j] = match state.label.strings.roots[j] {
                    RootSym::Root => RootSym::NonRoot,
                    RootSym::NonRoot => RootSym::Absent,
                    RootSym::Absent => RootSym::Root,
                };
            }
        }
        FaultKind::EndpString => {
            let len = state.label.strings.endp.len();
            if len > 0 {
                let j = rng.gen_range(0..len);
                state.label.strings.endp[j] = match state.label.strings.endp[j] {
                    EndpSym::Up | EndpSym::Down => EndpSym::NotEndpoint,
                    _ => EndpSym::Up,
                };
            }
        }
        FaultKind::SpDistance => {
            state.label.sp.dist = state.label.sp.dist.wrapping_add(rng.gen_range(1..7));
        }
        FaultKind::StoredPieceWeight => {
            let part = if rng.gen_bool(0.5) || state.label.bottom_part.stored.is_empty() {
                &mut state.label.top_part
            } else {
                &mut state.label.bottom_part
            };
            if let Some(stored) = part.stored.first_mut() {
                match stored.piece.min_out.as_mut() {
                    Some(w) => w.weight = w.weight.wrapping_add(rng.gen_range(1..1000)),
                    None => stored.piece.root_id = stored.piece.root_id.wrapping_add(1),
                }
            } else {
                // nothing stored here: fall back to a string corruption
                corrupt(state, FaultKind::RootsString, seed ^ 1);
            }
        }
        FaultKind::PartRoot => {
            state.label.top_part.part_root_id = state.label.top_part.part_root_id.wrapping_add(7);
        }
        FaultKind::TrainBuffers => {
            for t in &mut state.trains {
                t.want = rng.gen();
                t.done = None;
                t.up = None;
                t.down = None;
            }
            state.seen_levels = rng.gen();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::marker::Marker;
    use crate::verifier::CoreVerifier;
    use smst_graph::generators::random_connected_graph;
    use smst_graph::mst::kruskal;
    use smst_graph::NodeId;
    use smst_labeling::Instance;
    use smst_sim::NodeProgram;

    #[test]
    fn every_fault_kind_changes_the_register_or_is_benign() {
        let g = random_connected_graph(20, 50, 1);
        let tree = kruskal(&g).rooted_at(&g, NodeId(0)).unwrap();
        let inst = Instance::from_tree(g, &tree);
        let (labels, _) = Marker.label(&inst).unwrap();
        let verifier = CoreVerifier::new(inst.graph.clone(), inst.components.clone(), labels);
        let net = verifier.network();
        for (i, kind) in FaultKind::all().into_iter().enumerate() {
            let mut state = net.state(NodeId(3)).clone();
            let before = state.clone();
            corrupt(&mut state, kind, 42 + i as u64);
            // every fault kind except the (self-healing) train-buffer one
            // must change the label portion of the register
            if kind != FaultKind::TrainBuffers {
                assert_ne!(before.label, state.label, "{kind:?} left the label intact");
            }
            // memory accounting still works on the corrupted register
            let ctx = net.context(NodeId(3));
            assert!(verifier.state_bits(ctx, &state) > 0);
        }
    }
}
