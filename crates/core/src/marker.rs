//! The marker algorithm (§5.4, §6.3): assigning the `O(log n)`-bit labels in
//! `O(n)` time.
//!
//! For a correct instance (the candidate subgraph is an MST) the marker
//!
//! 1. re-runs SYNC_MST under the ω′ ordering of the candidate tree, which
//!    reconstructs exactly that tree and records the hierarchy `H_M` of
//!    active fragments and the candidate function `χ_M` (§5.1);
//! 2. derives the `Roots`/`EndP`/`Parents`/`Or-EndP` strings (§5.2–§5.3);
//! 3. builds the `Top`/`Bottom` partitions and places the pieces `I(F)` on
//!    the parts' nodes in DFS order (§6);
//! 4. emits one [`CoreLabel`] per node.
//!
//! In the paper the label assignment is piggybacked on the construction's
//! waves (Lemma 5.4, Corollary 6.11), adding only a constant factor to the
//! `O(n)` construction time; the [`ConstructionReport`] accounts for the
//! construction rounds plus that linear marker overhead.

use crate::labels::{CoreLabel, PartLabel};
use crate::partition::{build_partitions, Partitions};
use crate::strings::build_strings;
use crate::sync_mst::{SyncMst, SyncMstOutcome};
use smst_labeling::scheme::{Instance, MarkError};
use smst_labeling::sp::SpanningTreeScheme;
use smst_labeling::OneRoundScheme;

/// The marker's full output: the labels, the time/memory accounting, and
/// the internal structures (SYNC_MST outcome and partitions) tests and
/// fault injectors inspect.
pub type LabeledInternals = (
    Vec<CoreLabel>,
    ConstructionReport,
    (SyncMstOutcome, Partitions),
);

/// Ideal-time accounting of the construction + marking process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConstructionReport {
    /// Rounds used by SYNC_MST itself (Theorem 4.4: `O(n)`).
    pub construction_rounds: u64,
    /// Rounds charged to the label-assignment waves (multi-wave piece
    /// distribution and partition construction, §6.3: `O(n)`).
    pub marker_rounds: u64,
    /// The height of the hierarchy (`ℓ ≤ ⌈log n⌉`).
    pub hierarchy_height: u32,
    /// Memory bits per node used during construction and marking.
    pub memory_bits_per_node: u64,
}

impl ConstructionReport {
    /// Total construction time (construction + marking).
    pub fn total_rounds(&self) -> u64 {
        self.construction_rounds + self.marker_rounds
    }
}

/// The marker algorithm.
#[derive(Debug, Clone, Copy, Default)]
pub struct Marker;

impl Marker {
    /// Creates the marker.
    pub fn new() -> Self {
        Marker
    }

    /// Labels a correct instance.
    ///
    /// # Errors
    ///
    /// Returns [`MarkError::PredicateViolated`] if the candidate subgraph is
    /// not an MST, or [`MarkError::MalformedInstance`] if it is not even a
    /// spanning tree.
    pub fn label(
        &self,
        instance: &Instance,
    ) -> Result<(Vec<CoreLabel>, ConstructionReport), MarkError> {
        let (labels, report, _) = self.label_with_internals(instance)?;
        Ok((labels, report))
    }

    /// Like [`Self::label`] but also returns the internal structures
    /// (hierarchy outcome and partitions), used by tests and by the fault
    /// injectors.
    pub fn label_with_internals(&self, instance: &Instance) -> Result<LabeledInternals, MarkError> {
        if !instance.satisfies_mst() {
            return Err(MarkError::PredicateViolated(
                "candidate subgraph is not an MST".into(),
            ));
        }
        let g = &instance.graph;
        let tree = instance.candidate_tree()?;
        let outcome = SyncMst.run_for_candidate(g, &tree);
        debug_assert_eq!(
            {
                let mut a = outcome.tree.edges();
                a.sort_unstable();
                a
            },
            {
                let mut b = tree.edges();
                b.sort_unstable();
                b
            },
            "SYNC_MST under the candidate ordering reconstructs the candidate tree"
        );

        let strings = build_strings(g, &outcome.tree, &outcome.hierarchy);
        let partitions = build_partitions(g, &outcome.tree, &outcome.hierarchy);
        let sp_labels = SpanningTreeScheme.mark(instance)?;
        let n = g.node_count();

        let labels: Vec<CoreLabel> = g
            .nodes()
            .map(|v| {
                let tp = &partitions.top_parts[partitions.top_part_of[v.index()]];
                let bp = &partitions.bottom_parts[partitions.bottom_part_of[v.index()]];
                let part_label = |part: &crate::partition::Part| PartLabel {
                    part_root_id: g.id(part.root),
                    depth_in_part: part.depth_of(v) as u64,
                    diameter_bound: part.diameter as u64,
                    piece_count: part.pieces.len() as u8,
                    stored: part.stored_at(v),
                };
                let top_min_level = outcome
                    .hierarchy
                    .fragments_containing(v)
                    .into_iter()
                    .filter(|&i| outcome.hierarchy.fragment(i).len() >= partitions.threshold)
                    .map(|i| outcome.hierarchy.fragment(i).level)
                    .min()
                    .unwrap_or(0) as u8;
                CoreLabel {
                    sp: sp_labels[v.index()].clone(),
                    n_claim: n as u64,
                    subtree_count: outcome.tree.subtree_size(v) as u64,
                    strings: strings[v.index()].clone(),
                    top_min_level,
                    top_part: part_label(tp),
                    bottom_part: part_label(bp),
                }
            })
            .collect();

        let report = ConstructionReport {
            construction_rounds: outcome.rounds,
            // partition construction + multi-wave piece distribution +
            // string assignment are all piggybacked waves over the tree
            // (§6.3.7–§6.3.8): a constant number of linear-time passes.
            marker_rounds: 6 * n as u64 + 4 * (outcome.phases as u64 + 1),
            hierarchy_height: outcome.hierarchy.height(),
            memory_bits_per_node: outcome.memory_bits_per_node,
        };
        Ok((labels, report, (outcome, partitions)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smst_graph::generators::{path_graph, random_connected_graph, star_graph};
    use smst_graph::mst::kruskal;
    use smst_graph::NodeId;

    fn mst_instance(n: usize, m: usize, seed: u64) -> Instance {
        let g = random_connected_graph(n, m, seed);
        let tree = kruskal(&g).rooted_at(&g, NodeId(0)).unwrap();
        Instance::from_tree(g, &tree)
    }

    #[test]
    fn labels_every_node() {
        let inst = mst_instance(30, 80, 1);
        let (labels, report) = Marker.label(&inst).unwrap();
        assert_eq!(labels.len(), 30);
        assert!(report.total_rounds() > 0);
        assert!(report.hierarchy_height <= 6);
    }

    #[test]
    fn refuses_non_mst_instances() {
        let g = random_connected_graph(10, 30, 2);
        let mst = kruskal(&g);
        // find a swap producing a spanning non-MST tree
        let non_tree: Vec<_> = g
            .edge_entries()
            .map(|(e, _)| e)
            .filter(|e| !mst.contains(*e))
            .collect();
        let mut bad = None;
        'search: for &extra in &non_tree {
            for i in 0..mst.edges().len() {
                let mut edges = mst.edges().to_vec();
                edges[i] = extra;
                if let Ok(tree) = smst_graph::RootedTree::from_edges(&g, &edges, NodeId(0)) {
                    let inst = Instance::from_tree(g.clone(), &tree);
                    if !inst.satisfies_mst() {
                        bad = Some(inst);
                        break 'search;
                    }
                }
            }
        }
        let bad = bad.expect("a spanning non-MST tree exists");
        assert!(matches!(
            Marker.label(&bad),
            Err(MarkError::PredicateViolated(_))
        ));
    }

    #[test]
    fn label_size_is_logarithmic_in_n() {
        for n in [16usize, 64, 256] {
            let inst = mst_instance(n, 3 * n, 3);
            let (labels, _) = Marker.label(&inst).unwrap();
            let max_id = n as u64;
            let max_w = inst.graph.edges().iter().map(|e| e.weight).max().unwrap();
            let bits = labels
                .iter()
                .map(|l| l.bits(max_id, max_w, n))
                .max()
                .unwrap();
            let log_n = (n as f64).log2();
            assert!(
                (bits as f64) <= 60.0 * log_n + 80.0,
                "n={n}: {bits} bits exceeds the O(log n) budget"
            );
        }
    }

    #[test]
    fn construction_time_is_linear() {
        let mut prev = 0u64;
        for n in [32usize, 64, 128, 256] {
            let inst = mst_instance(n, 3 * n, 4);
            let (_, report) = Marker.label(&inst).unwrap();
            let total = report.total_rounds();
            assert!(total <= 120 * n as u64, "n={n}: {total} rounds is not O(n)");
            assert!(total > prev / 8, "construction time should grow with n");
            prev = total;
        }
    }

    #[test]
    fn works_on_paths_and_stars() {
        for g in [path_graph(20, 1), star_graph(20, 2)] {
            let tree = kruskal(&g).rooted_at(&g, NodeId(0)).unwrap();
            let inst = Instance::from_tree(g, &tree);
            let (labels, _) = Marker.label(&inst).unwrap();
            assert_eq!(labels.len(), 20);
        }
    }

    #[test]
    fn stored_pieces_cover_every_level_of_every_node() {
        let inst = mst_instance(50, 120, 5);
        let (labels, _, (outcome, _)) = Marker.label_with_internals(&inst).unwrap();
        let g = &inst.graph;
        for v in g.nodes() {
            let needed: Vec<(u64, u32)> = outcome
                .hierarchy
                .fragments_containing(v)
                .into_iter()
                .map(|i| {
                    let f = outcome.hierarchy.fragment(i);
                    (g.id(f.root), f.level)
                })
                .collect();
            // the pieces circulating in v's two parts must include every
            // (root, level) pair v needs; the per-node label only stores a
            // constant number, the rest arrive by train — here we check that
            // the label's own part metadata is consistent.
            let label = &labels[v.index()];
            assert!(label.top_part.stored.len() <= 2);
            assert!(label.bottom_part.stored.len() <= 2);
            assert!(!needed.is_empty());
            assert_eq!(label.n_claim, g.node_count() as u64);
        }
    }
}
