//! The `Top` and `Bottom` partitions of §6.1 and the placement of the pieces
//! of information `I(F)` (§6.2).
//!
//! * **Top fragments** are the fragments with at least `⌈log n⌉` nodes; the
//!   others are **bottom** fragments.
//! * A top fragment that is a leaf of the subtree `T_Top` of the hierarchy is
//!   **red**; an internal one is **large**; a bottom fragment whose hierarchy
//!   parent is large is **blue**; one whose parent is red is **green**.
//! * Partition `P′` = red ∪ blue fragments; Procedure `Merge` coarsens it to
//!   `P′′` (each part contains exactly one red fragment plus blue fragments of
//!   ancestor large fragments); each `P′′` part is then split into **Top
//!   parts** of size ≥ `⌈log n⌉` and diameter `O(log n)`.
//! * The **Bottom parts** are the blue and green fragments themselves.
//!
//! Every node belongs to exactly one Top part and one Bottom part. The Top
//! part of a node stores (spread two-per-node in DFS order) the pieces `I(F)`
//! of all top fragments that are hierarchy ancestors of the part's red
//! fragment; the Bottom part stores the pieces of all bottom fragments it
//! contains. Together these cover `I(F_j(v))` for every level `j` at which
//! `v` has a fragment.

use crate::labels::{PieceInfo, StoredPiece};
use smst_graph::{Hierarchy, NodeId, RootedTree, WeightedGraph};
use std::collections::{BTreeSet, HashMap};

/// One part of one of the two partitions.
#[derive(Debug, Clone)]
pub struct Part {
    /// The part's root (its node closest to the root of the candidate tree).
    pub root: NodeId,
    /// The part's nodes.
    pub nodes: Vec<NodeId>,
    /// The hop depth of each part node inside the part (aligned with
    /// [`Self::nodes`]).
    pub depth: Vec<usize>,
    /// The part's diameter (as a subtree of the candidate tree).
    pub diameter: usize,
    /// The pieces circulating in this part, in slot order.
    pub pieces: Vec<PieceInfo>,
    /// For each slot, the node permanently storing the piece.
    pub holders: Vec<NodeId>,
}

impl Part {
    /// The permanently stored pieces of a given member node.
    pub fn stored_at(&self, v: NodeId) -> Vec<StoredPiece> {
        self.holders
            .iter()
            .enumerate()
            .filter(|&(_, &h)| h == v)
            .map(|(slot, _)| StoredPiece {
                slot: slot as u8,
                piece: self.pieces[slot],
            })
            .collect()
    }

    /// The depth of a member node inside the part.
    pub fn depth_of(&self, v: NodeId) -> usize {
        self.nodes
            .iter()
            .position(|&x| x == v)
            .map(|i| self.depth[i])
            .expect("node belongs to the part")
    }
}

/// The two partitions plus the per-node assignment.
#[derive(Debug, Clone)]
pub struct Partitions {
    /// The size threshold separating top from bottom fragments (`⌈log n⌉`).
    pub threshold: usize,
    /// The parts of partition `Top`.
    pub top_parts: Vec<Part>,
    /// The parts of partition `Bottom`.
    pub bottom_parts: Vec<Part>,
    /// For each node, the index of its `Top` part.
    pub top_part_of: Vec<usize>,
    /// For each node, the index of its `Bottom` part.
    pub bottom_part_of: Vec<usize>,
}

/// Builds both partitions and the piece placement from a hierarchy with
/// candidates (as produced by SYNC_MST).
///
/// # Panics
///
/// Panics if the hierarchy is inconsistent with the tree (these structures
/// come from the marker, which validated them).
pub fn build_partitions(g: &WeightedGraph, tree: &RootedTree, hierarchy: &Hierarchy) -> Partitions {
    let n = g.node_count();
    let threshold = ((n.max(2) as f64).log2().ceil() as usize).max(1);

    let is_top: Vec<bool> = (0..hierarchy.len())
        .map(|i| hierarchy.fragment(i).len() >= threshold)
        .collect();
    let is_red: Vec<bool> = (0..hierarchy.len())
        .map(|i| is_top[i] && hierarchy.children_of(i).iter().all(|&c| !is_top[c]))
        .collect();
    let is_large: Vec<bool> = (0..hierarchy.len())
        .map(|i| is_top[i] && !is_red[i])
        .collect();
    let is_blue: Vec<bool> = (0..hierarchy.len())
        .map(|i| !is_top[i] && hierarchy.parent_of(i).map(|p| is_large[p]).unwrap_or(false))
        .collect();
    let is_green: Vec<bool> = (0..hierarchy.len())
        .map(|i| !is_top[i] && hierarchy.parent_of(i).map(|p| is_red[p]).unwrap_or(false))
        .collect();

    // ---- partition P'' : red-centred parts --------------------------------
    // part id -> (node set, red fragment index)
    let mut pp_nodes: Vec<BTreeSet<NodeId>> = Vec::new();
    let mut pp_red: Vec<usize> = Vec::new();
    let mut pp_of: Vec<Option<usize>> = vec![None; n];
    for (i, &red) in is_red.iter().enumerate() {
        if red {
            let set = hierarchy.fragment(i).nodes.clone();
            for &v in &set {
                pp_of[v.index()] = Some(pp_nodes.len());
            }
            pp_nodes.push(set);
            pp_red.push(i);
        }
    }
    // merge blue fragments, processing large fragments bottom-up
    let mut larges: Vec<usize> = (0..hierarchy.len()).filter(|&i| is_large[i]).collect();
    larges.sort_by_key(|&i| hierarchy.fragment(i).level);
    for &flarge in &larges {
        let mut pending: Vec<usize> = hierarchy
            .children_of(flarge)
            .iter()
            .copied()
            .filter(|&c| is_blue[c])
            .collect();
        let mut guard = 0;
        while !pending.is_empty() {
            guard += 1;
            assert!(
                guard <= 2 * n + 2,
                "Procedure Merge failed to converge (hierarchy inconsistent)"
            );
            let mut progressed = false;
            let flarge_nodes = hierarchy.fragment(flarge).nodes.clone();
            pending.retain(|&b| {
                let frag = hierarchy.fragment(b);
                // a part touching the blue fragment through a tree edge that
                // stays inside the enclosing large fragment (so that every
                // part keeps the Claim 6.3 property: its nodes all belong to
                // ancestor fragments of its red fragment)
                let touching = frag.nodes.iter().find_map(|&v| {
                    let mut cands = Vec::new();
                    if let Some(p) = tree.parent(v) {
                        cands.push(p);
                    }
                    cands.extend(tree.children(v).iter().copied());
                    cands
                        .into_iter()
                        .filter(|u| !frag.contains(*u) && flarge_nodes.contains(u))
                        .find_map(|u| pp_of[u.index()])
                });
                match touching {
                    Some(part) => {
                        for &v in &frag.nodes {
                            pp_of[v.index()] = Some(part);
                        }
                        pp_nodes[part].extend(frag.nodes.iter().copied());
                        progressed = true;
                        false
                    }
                    None => true,
                }
            });
            assert!(
                progressed || pending.is_empty(),
                "Procedure Merge is stuck: some blue fragment touches no part"
            );
        }
    }
    // any node still unassigned (only possible in degenerate tiny hierarchies)
    // becomes its own red-centred part anchored at the top fragment
    let top_idx = (0..hierarchy.len())
        .find(|&i| hierarchy.fragment(i).len() == n)
        .expect("the hierarchy contains the whole tree");
    for (v, slot) in pp_of.iter_mut().enumerate() {
        if slot.is_none() {
            *slot = Some(pp_nodes.len());
            pp_nodes.push(BTreeSet::from([NodeId(v)]));
            pp_red.push(top_idx);
        }
    }

    // ---- partition Top: split each P'' part into small-diameter subtrees --
    let mut top_parts: Vec<Part> = Vec::new();
    let mut top_part_of: Vec<usize> = vec![usize::MAX; n];
    for (pp_idx, nodes) in pp_nodes.iter().enumerate() {
        // pieces shared by all sub-parts: the top ancestors (and self) of the
        // red fragment
        let mut anc = Vec::new();
        let mut cur = Some(pp_red[pp_idx]);
        while let Some(i) = cur {
            if is_top[i] {
                anc.push(i);
            }
            cur = hierarchy.parent_of(i);
        }
        let pieces = pieces_for(g, tree, hierarchy, &anc);
        let min_size = threshold.max(pieces.len().div_ceil(2)).max(1);
        for cluster in split_subtree(tree, nodes, min_size) {
            let part = make_part(tree, cluster, pieces.clone());
            for &v in &part.nodes {
                top_part_of[v.index()] = top_parts.len();
            }
            top_parts.push(part);
        }
    }

    // ---- partition Bottom: blue and green fragments -----------------------
    let mut bottom_parts: Vec<Part> = Vec::new();
    let mut bottom_part_of: Vec<usize> = vec![usize::MAX; n];
    for i in 0..hierarchy.len() {
        if is_blue[i] || is_green[i] {
            let frag = hierarchy.fragment(i);
            // all bottom fragments contained in this fragment
            let inner: Vec<usize> = (0..hierarchy.len())
                .filter(|&j| !is_top[j] && hierarchy.fragment(j).nodes.is_subset(&frag.nodes))
                .collect();
            let pieces = pieces_for(g, tree, hierarchy, &inner);
            let part = make_part(tree, frag.nodes.iter().copied().collect(), pieces);
            for &v in &part.nodes {
                bottom_part_of[v.index()] = bottom_parts.len();
            }
            bottom_parts.push(part);
        }
    }
    // fallback for nodes not covered by any blue/green fragment (happens only
    // when their singleton fragment is itself top, i.e. for very small n)
    for (v, slot) in bottom_part_of.iter_mut().enumerate() {
        if *slot == usize::MAX {
            let singleton = hierarchy
                .fragment_at_level(NodeId(v), 0)
                .expect("every node has a level-0 fragment");
            let pieces = pieces_for(g, tree, hierarchy, &[singleton]);
            let part = make_part(tree, vec![NodeId(v)], pieces);
            *slot = bottom_parts.len();
            bottom_parts.push(part);
        }
    }

    Partitions {
        threshold,
        top_parts,
        bottom_parts,
        top_part_of,
        bottom_part_of,
    }
}

/// Builds the `I(F)` pieces of the given fragments, sorted by (level, root
/// identity) — the slot order of the part's cycle.
fn pieces_for(
    g: &WeightedGraph,
    tree: &RootedTree,
    hierarchy: &Hierarchy,
    fragment_indices: &[usize],
) -> Vec<PieceInfo> {
    let mut pieces: Vec<PieceInfo> = fragment_indices
        .iter()
        .map(|&i| {
            let frag = hierarchy.fragment(i);
            let min_out = hierarchy
                .candidate(i)
                .map(|e| g.composite_weight(e, tree.contains_edge(e)));
            PieceInfo {
                root_id: g.id(frag.root),
                level: frag.level,
                min_out,
            }
        })
        .collect();
    pieces.sort_by_key(|p| (p.level, p.root_id));
    pieces.dedup();
    pieces
}

/// Splits the subtree induced by `nodes` into connected clusters of size at
/// least `min_size` (except that the final cluster absorbs the remainder),
/// each of diameter `O(min_size)`.
fn split_subtree(tree: &RootedTree, nodes: &BTreeSet<NodeId>, min_size: usize) -> Vec<Vec<NodeId>> {
    // the induced subtree's root and parent/children restricted to `nodes`
    let root = *nodes
        .iter()
        .min_by_key(|&&v| tree.depth(v))
        .expect("parts are non-empty");
    let in_set = |v: NodeId| nodes.contains(&v);
    // DFS order over the induced subtree
    let mut order = Vec::new();
    let mut stack = vec![root];
    while let Some(v) = stack.pop() {
        order.push(v);
        for &c in tree.children(v) {
            if in_set(c) {
                stack.push(c);
            }
        }
    }
    let mut closed: Vec<Vec<NodeId>> = Vec::new();
    // pending cluster accumulated at each node
    let mut pending: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
    for &v in order.iter().rev() {
        let mut cluster = vec![v];
        for &c in tree.children(v) {
            if in_set(c) {
                if let Some(p) = pending.remove(&c) {
                    cluster.extend(p);
                }
            }
        }
        if cluster.len() >= min_size && v != root {
            closed.push(cluster);
        } else {
            pending.insert(v, cluster);
        }
    }
    // the remainder containing the root
    let remainder = pending.remove(&root).unwrap_or_default();
    if remainder.len() >= min_size || closed.is_empty() {
        if !remainder.is_empty() {
            closed.push(remainder);
        }
    } else {
        // merge the remainder into a closed cluster whose root's parent lies
        // in the remainder, preserving connectivity
        let rem_set: BTreeSet<NodeId> = remainder.iter().copied().collect();
        let target = closed
            .iter()
            .position(|cluster| {
                cluster.iter().any(|&x| {
                    tree.parent(x)
                        .map(|p| rem_set.contains(&p))
                        .unwrap_or(false)
                })
            })
            .expect("some closed cluster hangs off the remainder");
        closed[target].extend(remainder);
    }
    closed
}

/// Assembles a [`Part`] from its node set and pieces: computes the part root,
/// per-node depths, the diameter and the DFS piece placement (two slots per
/// node).
fn make_part(tree: &RootedTree, mut nodes: Vec<NodeId>, pieces: Vec<PieceInfo>) -> Part {
    nodes.sort_unstable();
    nodes.dedup();
    let set: BTreeSet<NodeId> = nodes.iter().copied().collect();
    let root = *set
        .iter()
        .min_by_key(|&&v| tree.depth(v))
        .expect("parts are non-empty");
    // DFS preorder of the induced subtree, used both for depths and holders
    let mut order = Vec::new();
    let mut depth_map: HashMap<NodeId, usize> = HashMap::new();
    let mut stack = vec![(root, 0usize)];
    while let Some((v, d)) = stack.pop() {
        order.push(v);
        depth_map.insert(v, d);
        for &c in tree.children(v) {
            if set.contains(&c) {
                stack.push((c, d + 1));
            }
        }
    }
    assert_eq!(
        order.len(),
        set.len(),
        "a part must induce a connected subtree"
    );
    assert!(
        pieces.len() <= 2 * order.len(),
        "a part must have room for its pieces (two per node)"
    );
    let holders: Vec<NodeId> = (0..pieces.len()).map(|slot| order[slot / 2]).collect();
    let max_depth = depth_map.values().copied().max().unwrap_or(0);
    let nodes_ordered: Vec<NodeId> = order.clone();
    let depth: Vec<usize> = nodes_ordered.iter().map(|v| depth_map[v]).collect();
    Part {
        root,
        nodes: nodes_ordered,
        depth,
        diameter: 2 * max_depth,
        pieces,
        holders,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync_mst::SyncMst;
    use proptest::prelude::*;
    use smst_graph::generators::{path_graph, random_connected_graph};

    fn build(n: usize, seed: u64) -> (WeightedGraph, RootedTree, Hierarchy, Partitions) {
        let g = random_connected_graph(n, 3 * n, seed);
        let outcome = SyncMst.run(&g);
        let parts = build_partitions(&g, &outcome.tree, &outcome.hierarchy);
        (g, outcome.tree, outcome.hierarchy, parts)
    }

    fn check_invariants(g: &WeightedGraph, tree: &RootedTree, h: &Hierarchy, parts: &Partitions) {
        let n = g.node_count();
        // every node in exactly one part of each partition
        for v in 0..n {
            assert!(parts.top_part_of[v] < parts.top_parts.len());
            assert!(parts.bottom_part_of[v] < parts.bottom_parts.len());
            assert!(parts.top_parts[parts.top_part_of[v]]
                .nodes
                .contains(&NodeId(v)));
            assert!(parts.bottom_parts[parts.bottom_part_of[v]]
                .nodes
                .contains(&NodeId(v)));
        }
        let covered: usize = parts.top_parts.iter().map(|p| p.nodes.len()).sum();
        assert_eq!(covered, n, "Top parts partition the nodes");
        let covered: usize = parts.bottom_parts.iter().map(|p| p.nodes.len()).sum();
        assert_eq!(covered, n, "Bottom parts partition the nodes");

        let log_n = (n.max(2) as f64).log2().ceil() as usize;
        for p in parts.top_parts.iter().chain(parts.bottom_parts.iter()) {
            assert!(
                p.diameter <= 6 * log_n + 4,
                "part diameter {} is not O(log n)",
                p.diameter
            );
            assert!(p.pieces.len() <= 2 * p.nodes.len());
            assert_eq!(p.holders.len(), p.pieces.len());
            for (slot, &h) in p.holders.iter().enumerate() {
                assert!(p.nodes.contains(&h), "slot {slot} holder is in the part");
            }
            // per node at most two stored pieces
            for &v in &p.nodes {
                assert!(p.stored_at(v).len() <= 2);
            }
        }

        // coverage: for every node and every level at which it has a
        // fragment, the piece of that fragment is carried by one of its two
        // parts
        for v in g.nodes() {
            for idx in h.fragments_containing(v) {
                let frag = h.fragment(idx);
                let id = (g.id(frag.root), frag.level);
                let tp = &parts.top_parts[parts.top_part_of[v.index()]];
                let bp = &parts.bottom_parts[parts.bottom_part_of[v.index()]];
                let found = tp
                    .pieces
                    .iter()
                    .chain(bp.pieces.iter())
                    .any(|p| (p.root_id, p.level) == id);
                assert!(
                    found,
                    "node {v} misses the piece of its level-{} fragment",
                    frag.level
                );
            }
        }
        let _ = tree;
    }

    #[test]
    fn invariants_on_random_graphs() {
        for seed in 0..6 {
            let (g, tree, h, parts) = build(40, seed);
            check_invariants(&g, &tree, &h, &parts);
        }
    }

    #[test]
    fn invariants_on_a_path() {
        let g = path_graph(64, 9);
        let outcome = SyncMst.run(&g);
        let parts = build_partitions(&g, &outcome.tree, &outcome.hierarchy);
        check_invariants(&g, &outcome.tree, &outcome.hierarchy, &parts);
    }

    #[test]
    fn invariants_on_small_graphs() {
        for n in 1..8usize {
            let g = random_connected_graph(n, 3 * n, 11);
            let outcome = SyncMst.run(&g);
            let parts = build_partitions(&g, &outcome.tree, &outcome.hierarchy);
            check_invariants(&g, &outcome.tree, &outcome.hierarchy, &parts);
        }
    }

    #[test]
    fn top_parts_are_reasonably_large() {
        let (g, _, _, parts) = build(120, 3);
        let threshold = parts.threshold;
        for p in &parts.top_parts {
            assert!(
                p.nodes.len() >= threshold.min(g.node_count()),
                "top part of {} nodes is below the threshold {threshold}",
                p.nodes.len()
            );
        }
    }

    #[test]
    fn top_parts_intersect_one_top_fragment_per_level() {
        let (g, _, h, parts) = build(100, 4);
        let threshold = parts.threshold;
        for p in &parts.top_parts {
            let mut seen_levels = std::collections::HashSet::new();
            for i in 0..h.len() {
                let frag = h.fragment(i);
                if frag.len() >= threshold && p.nodes.iter().any(|v| frag.contains(*v)) {
                    assert!(
                        seen_levels.insert(frag.level),
                        "part intersects two top fragments of level {}",
                        frag.level
                    );
                }
            }
        }
        let _ = g;
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]
        #[test]
        fn partitions_cover_all_needed_pieces(n in 2usize..50, seed in 0u64..100) {
            let g = random_connected_graph(n, 3 * n, seed);
            let outcome = SyncMst.run(&g);
            let parts = build_partitions(&g, &outcome.tree, &outcome.hierarchy);
            check_invariants(&g, &outcome.tree, &outcome.hierarchy, &parts);
        }
    }
}
