//! The self-stabilizing verifier (§7–§8), as a [`NodeProgram`].
//!
//! Each activation, every node:
//!
//! 1. runs the **structural 1-round checks**: the Example SP / NumK
//!    conditions, the RS/EPS string legality conditions of §5, and the
//!    representation of the two partitions;
//! 2. advances its two **trains** (one per partition, §7.1): the piece of the
//!    current slot climbs from its permanent holder to the part root, is
//!    flooded back down with the *membership flag* of §7.1, and the part root
//!    advances the slot once its whole part acknowledges (an ack-paced
//!    variant of the paper's pipelined train — see `DESIGN.md`); the part
//!    root also checks that pieces arrive in the prescribed cyclic order
//!    (§8);
//! 3. runs the **comparison machinery** (§7.2): it copies its own member
//!    piece of the current level into its `Ask` buffer, walks its neighbours
//!    round-robin, uses the `Want` register to make a neighbour's train hold
//!    the piece it needs (§7.2.2), and on every event `E(v, u, j)` evaluates
//!    the minimality checks C1/C2 and the equality checks of Claim 8.3;
//! 4. tracks, per cycle, which of its own levels it has seen (the cycle-set
//!    completeness check of §8) and raises an alarm if a needed piece never
//!    arrives.
//!
//! Any violation makes the node output [`Verdict::Reject`] — "raising an
//! alarm" in the paper's terminology.

use crate::labels::{CoreLabel, PieceInfo};
use crate::strings::{check_strings, EndpSym, RootSym, StringNeighborhood};
use smst_graph::weight::CompositeWeight;
use smst_graph::{ComponentMap, NodeId, Port, WeightedGraph};
use smst_sim::{Network, NodeContext, NodeProgram, Verdict};

/// Which of the two partitions a train belongs to.
pub const TRAIN_TOP: usize = 0;
/// Index of the Bottom-partition train.
pub const TRAIN_BOTTOM: usize = 1;

/// A piece climbing towards the part root.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpItem {
    /// The slot being collected.
    pub slot: u8,
    /// The piece contents.
    pub piece: PieceInfo,
}

/// A piece flooding down from the part root, carrying the membership flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DownItem {
    /// The slot being distributed.
    pub slot: u8,
    /// The piece contents.
    pub piece: PieceInfo,
    /// Whether this node belongs to the piece's fragment (§7.1's flag).
    pub member: bool,
}

/// The per-train dynamic registers of a node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrainState {
    /// The slot currently being circulated (driven by the part root).
    pub want: u8,
    /// The piece climbing up (§7.1 convergecast direction).
    pub up: Option<UpItem>,
    /// The piece flooding down (§7.1 broadcast direction), a.k.a. `Show`.
    pub down: Option<DownItem>,
    /// `Some(slot)` once this node's whole part-subtree holds the slot's
    /// piece — the acknowledgement that paces the root.
    pub done: Option<u8>,
    /// How long the node has delayed replacing its `down` buffer because a
    /// neighbour `Want`s the currently shown piece.
    pub delay: u8,
    /// Cycle boundaries (slot counter wrap-arounds) observed since the last
    /// completeness check.
    pub wraps: u8,
    /// The key of the last piece completed at the root (cyclic-order check).
    pub last_key: Option<(u32, u64)>,
}

impl TrainState {
    fn fresh() -> Self {
        TrainState {
            want: 0,
            up: None,
            down: None,
            done: None,
            delay: 0,
            wraps: 0,
            last_key: None,
        }
    }
}

/// The comparison (client) state of §7.2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompareState {
    /// Index into the node's level list `J(v)` of the level being compared.
    pub level_idx: u8,
    /// The held piece `I(F_j(v))` (the `Ask` buffer).
    pub ask: Option<PieceInfo>,
    /// The port of the neighbour currently being compared.
    pub neighbor_ptr: u16,
    /// The `Want` register: `(neighbour identity, level)` this node is
    /// waiting to see.
    pub want_cmp: Option<(u64, u32)>,
    /// The last observed slot counters of the watched neighbour's two trains
    /// (used to count that neighbour's cycle boundaries).
    pub watched_prev: [u8; 2],
    /// Cycle boundaries observed on the watched neighbour's trains.
    pub watched_wraps: [u8; 2],
}

impl CompareState {
    fn fresh() -> Self {
        CompareState {
            level_idx: 0,
            ask: None,
            neighbor_ptr: 0,
            want_cmp: None,
            watched_prev: [0, 0],
            watched_wraps: [0, 0],
        }
    }
}

/// The full register of a node running the verifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreState {
    /// The node's label (the corruptible proof).
    pub label: CoreLabel,
    /// The two trains (Top, Bottom).
    pub trains: [TrainState; 2],
    /// The comparison machinery.
    pub compare: CompareState,
    /// Bitmask over levels: member pieces seen since the last completeness
    /// check.
    pub seen_levels: u64,
    /// The node's current verdict.
    pub verdict: Verdict,
}

/// The verifier program. It carries the (read-only) network inputs every node
/// legitimately has locally: the graph's weights/ports/identities and the
/// component pointers of the candidate subgraph, plus the initial labels
/// (which become the per-node registers and may be corrupted by faults).
#[derive(Debug)]
pub struct CoreVerifier {
    graph: WeightedGraph,
    components: ComponentMap,
    labels: Vec<CoreLabel>,
}

impl CoreVerifier {
    /// Bundles the verifier's inputs.
    pub fn new(graph: WeightedGraph, components: ComponentMap, labels: Vec<CoreLabel>) -> Self {
        CoreVerifier {
            graph,
            components,
            labels,
        }
    }

    /// The graph the verifier runs on.
    pub fn graph(&self) -> &WeightedGraph {
        &self.graph
    }

    /// The component map of the candidate subgraph being verified.
    pub fn components(&self) -> &ComponentMap {
        &self.components
    }

    /// Builds the simulator network whose registers hold the initial labels.
    pub fn network(&self) -> Network<Self> {
        Network::new(self, self.graph.clone())
    }

    // ----- helpers ---------------------------------------------------------

    /// The parent port of a node according to its component pointer.
    fn parent_port(&self, v: NodeId) -> Option<Port> {
        self.components
            .pointer(v)
            .filter(|p| p.index() < self.graph.degree(v))
    }

    fn edge_weight(
        &self,
        v: NodeId,
        port: Port,
        neighbor: &CoreState,
        is_tree: bool,
    ) -> CompositeWeight {
        let e = self.graph.incident_edges(v)[port.index()];
        CompositeWeight::new(
            self.graph.weight(e),
            is_tree,
            self.graph.id(v),
            neighbor.label.sp.own_id,
        )
    }

    /// Whether the edge behind `port` is a tree edge (the neighbour is this
    /// node's component parent, or claims this node as its parent).
    fn is_tree_edge(&self, ctx: &NodeContext, port: Port, neighbor: &CoreState) -> bool {
        self.parent_port(ctx.node) == Some(port) || neighbor.label.sp.parent_id == Some(ctx.id)
    }

    // ----- structural 1-round checks (§5, SP, NumK, partitions) ------------

    fn structural_ok(&self, ctx: &NodeContext, own: &CoreState, neighbors: &[&CoreState]) -> bool {
        let v = ctx.node;
        let label = &own.label;
        // SP: truthful identity, agreement on the root, distance rules
        if label.sp.own_id != ctx.id {
            return false;
        }
        if neighbors
            .iter()
            .any(|s| s.label.sp.root_id != label.sp.root_id)
        {
            return false;
        }
        let parent_port = self.parent_port(v);
        let parent = parent_port.map(|p| neighbors[p.index()]);
        match parent {
            None => {
                if self.components.pointer(v).is_some() {
                    return false; // pointer names a non-existent port
                }
                if label.sp.dist != 0 || label.sp.root_id != ctx.id || label.sp.parent_id.is_some()
                {
                    return false;
                }
            }
            Some(p) => {
                if label.sp.dist != p.label.sp.dist + 1
                    || label.sp.parent_id != Some(p.label.sp.own_id)
                {
                    return false;
                }
            }
        }
        // NumK: agreement on n and subtree aggregation
        if neighbors.iter().any(|s| s.label.n_claim != label.n_claim) {
            return false;
        }
        let children: Vec<&&CoreState> = neighbors
            .iter()
            .filter(|s| s.label.sp.parent_id == Some(ctx.id))
            .collect();
        let child_sum: u64 = children.iter().map(|s| s.label.subtree_count).sum();
        if label.subtree_count != 1 + child_sum {
            return false;
        }
        if parent.is_none() && label.subtree_count != label.n_claim {
            return false;
        }
        // strings legality (RS / EPS conditions)
        let max_len = (label.n_claim.max(2) as f64).log2().ceil() as usize + 1;
        let view = StringNeighborhood {
            own: &label.strings,
            parent: parent.map(|p| &p.label.strings),
            children: children.iter().map(|c| &c.label.strings).collect(),
            is_tree_root: parent.is_none(),
            max_len,
        };
        if check_strings(&view).is_err() {
            return false;
        }
        // partition representation: parts are subtrees, so a non-root of a
        // part must have its tree parent in the same part; diameters and
        // piece counts are bounded and agreed upon inside the part
        let log_n = (label.n_claim.max(2) as f64).log2().ceil() as u64;
        for (mine, getter) in [
            (
                &label.top_part,
                top_part_of as fn(&CoreState) -> &crate::labels::PartLabel,
            ),
            (
                &label.bottom_part,
                bottom_part_of as fn(&CoreState) -> &crate::labels::PartLabel,
            ),
        ] {
            let i_am_part_root = mine.part_root_id == ctx.id;
            if i_am_part_root {
                if mine.depth_in_part != 0 {
                    return false;
                }
            } else {
                match parent {
                    None => return false,
                    Some(p) => {
                        let pp = getter(p);
                        if pp.part_root_id != mine.part_root_id {
                            return false;
                        }
                        if mine.depth_in_part != pp.depth_in_part + 1 {
                            return false;
                        }
                        if pp.diameter_bound != mine.diameter_bound
                            || pp.piece_count != mine.piece_count
                        {
                            return false;
                        }
                    }
                }
            }
            if mine.diameter_bound > 6 * log_n + 6 {
                return false;
            }
            if u64::from(mine.piece_count) > 2 * (log_n + 2) {
                return false;
            }
            if mine.depth_in_part > mine.diameter_bound {
                return false;
            }
            if mine.stored.len() > 2 {
                return false;
            }
            if mine.stored.iter().any(|s| s.slot >= mine.piece_count) {
                return false;
            }
        }
        // the delimiter must not exceed the string length
        if usize::from(label.top_min_level) > label.strings.len() {
            return false;
        }
        true
    }

    // ----- train step (§7.1, ack-paced variant) -----------------------------

    /// Whether some neighbour currently `Want`s a member piece shown by this
    /// node.
    fn neighbor_wants_shown(
        &self,
        ctx: &NodeContext,
        own: &CoreState,
        neighbors: &[&CoreState],
    ) -> bool {
        let shown: Vec<u32> = own
            .trains
            .iter()
            .filter_map(|t| t.down.as_ref())
            .filter(|d| d.member)
            .map(|d| d.piece.level)
            .collect();
        if shown.is_empty() {
            return false;
        }
        neighbors.iter().any(|s| {
            s.compare
                .want_cmp
                .map(|(id, lev)| id == ctx.id && shown.contains(&lev))
                .unwrap_or(false)
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn step_train(
        &self,
        which: usize,
        ctx: &NodeContext,
        own: &CoreState,
        neighbors: &[&CoreState],
        next: &mut CoreState,
        wants_hold: bool,
        alarm: &mut bool,
    ) {
        let v = ctx.node;
        let part = if which == TRAIN_TOP {
            &own.label.top_part
        } else {
            &own.label.bottom_part
        };
        let k = part.piece_count;
        let train = &own.trains[which];
        let out = &mut next.trains[which];
        if k == 0 {
            *out = TrainState::fresh();
            return;
        }
        let i_am_root = part.part_root_id == ctx.id;
        let parent_port = self.parent_port(v);
        let parent_state = parent_port.map(|p| neighbors[p.index()]);
        let parent_same_part = parent_state
            .map(|p| part_of(p, which).part_root_id == part.part_root_id)
            .unwrap_or(false);
        // part children: tree children in the same part
        let part_children: Vec<&&CoreState> = neighbors
            .iter()
            .filter(|s| {
                s.label.sp.parent_id == Some(ctx.id)
                    && part_of(s, which).part_root_id == part.part_root_id
            })
            .collect();

        // 1. the slot being circulated
        let mut wraps = train.wraps;
        let want = if i_am_root {
            let mut w = if train.want >= k { 0 } else { train.want };
            // advance once the whole part acknowledged and no neighbour holds us
            let done_here = train.done == Some(w);
            let held = wants_hold && train.delay < DELAY_MAX;
            if done_here && !held {
                // cyclic-order check of §8: the completed piece's key must
                // strictly increase within a cycle
                if let Some(d) = &train.down {
                    let key = (d.piece.level, d.piece.root_id);
                    if let Some(last) = train.last_key {
                        if w != 0 && key <= last {
                            *alarm = true;
                        }
                    }
                    out.last_key = Some(key);
                }
                w = (w + 1) % k;
                if w == 0 {
                    wraps = wraps.saturating_add(1);
                }
            }
            out.delay = if done_here && held {
                train.delay.saturating_add(1)
            } else {
                0
            };
            w
        } else {
            let w = parent_state
                .filter(|_| parent_same_part)
                .map(|p| p.trains[which].want)
                .unwrap_or(0);
            let w = if w >= k { 0 } else { w };
            if w < train.want {
                wraps = wraps.saturating_add(1);
            }
            w
        };
        out.want = want;
        out.wraps = wraps;
        if i_am_root {
            if out.want == 0 && want != train.want {
                out.last_key = None;
            } else if out.last_key.is_none() {
                out.last_key = train.last_key;
            }
        }

        // 2. the upward (convergecast) buffer
        let stored = part.stored.iter().find(|s| s.slot == want);
        out.up = if let Some(s) = stored {
            Some(UpItem {
                slot: want,
                piece: s.piece,
            })
        } else if train.up.map(|u| u.slot == want).unwrap_or(false) {
            train.up
        } else {
            part_children
                .iter()
                .filter_map(|c| c.trains[which].up)
                .find(|u| u.slot == want)
        };

        // 3. the downward (broadcast / Show) buffer, with the membership flag
        let replace_with: Option<DownItem> = if i_am_root {
            let source = stored
                .map(|s| s.piece)
                .or_else(|| out.up.filter(|u| u.slot == want).map(|u| u.piece));
            source.map(|piece| DownItem {
                slot: want,
                piece,
                member: self.root_membership(which, &own.label, piece),
            })
        } else {
            parent_state
                .filter(|_| parent_same_part)
                .and_then(|p| p.trains[which].down)
                .filter(|d| d.slot == want)
                .map(|d| DownItem {
                    slot: d.slot,
                    piece: d.piece,
                    member: self.child_membership(&own.label, ctx, d),
                })
        };
        let current_ok = train.down.map(|d| d.slot == want).unwrap_or(false);
        out.down = match (current_ok, replace_with) {
            (true, _) => train.down,
            (false, Some(new)) => {
                // §7.2.2: do not overwrite a piece a neighbour still wants
                if wants_hold && train.delay < DELAY_MAX && train.down.is_some() {
                    out.delay = train.delay.saturating_add(1);
                    train.down
                } else {
                    if !i_am_root {
                        out.delay = 0;
                    }
                    Some(new)
                }
            }
            (false, None) => train.down,
        };

        // 4. the acknowledgement
        let have = out.down.map(|d| d.slot == want).unwrap_or(false);
        let children_done = part_children
            .iter()
            .all(|c| c.trains[which].done == Some(want));
        out.done = if have && children_done {
            Some(want)
        } else {
            None
        };

        // 5. checks on the member piece currently shown (§8, Claim 8.3)
        if let Some(d) = out.down {
            if d.member {
                let j = d.piece.level as usize;
                let strings = &own.label.strings;
                if j >= strings.len() || strings.roots[j] == RootSym::Absent {
                    *alarm = true;
                } else {
                    next.seen_levels |= 1u64 << (j as u32).min(63);
                    if strings.roots[j] == RootSym::Root && d.piece.root_id != ctx.id {
                        *alarm = true;
                    }
                    // only the top fragment (the whole tree) has no outgoing edge
                    if d.piece.min_out.is_none() && j + 1 != strings.len() {
                        *alarm = true;
                    }
                }
            }
        }
    }

    /// Membership rule at the part root (§7.1's flag, initial value).
    fn root_membership(&self, which: usize, label: &CoreLabel, piece: PieceInfo) -> bool {
        let j = piece.level as usize;
        if j >= label.strings.len() || label.strings.roots[j] == RootSym::Absent {
            return false;
        }
        match which {
            TRAIN_TOP => {
                // the part intersects at most one top fragment per level
                // (Claim 6.3), so having a top fragment at this level means it
                // is the piece's fragment
                piece.level >= u32::from(label.top_min_level)
            }
            _ => piece.root_id == label.sp.own_id,
        }
    }

    /// Membership rule when copying the piece from the part parent.
    fn child_membership(&self, label: &CoreLabel, ctx: &NodeContext, d: DownItem) -> bool {
        let j = d.piece.level as usize;
        if d.piece.root_id == ctx.id {
            return true;
        }
        d.member && j < label.strings.len() && label.strings.roots[j] == RootSym::NonRoot
    }

    // ----- comparison machinery (§7.2, §8) ----------------------------------

    #[allow(clippy::too_many_arguments)]
    fn step_compare(
        &self,
        ctx: &NodeContext,
        own: &CoreState,
        neighbors: &[&CoreState],
        next: &mut CoreState,
        alarm: &mut bool,
    ) {
        let levels = own.label.strings.levels_present();
        if levels.is_empty() {
            next.compare = CompareState::fresh();
            return;
        }
        let mut cmp = own.compare.clone();
        if usize::from(cmp.level_idx) >= levels.len() {
            cmp = CompareState::fresh();
        }
        let level = levels[usize::from(cmp.level_idx)] as u32;

        // obtain the Ask piece for the current level from one of our trains
        if cmp.ask.map(|p| p.level != level).unwrap_or(false) {
            cmp.ask = None;
        }
        if cmp.ask.is_none() {
            cmp.ask = next
                .trains
                .iter()
                .filter_map(|t| t.down)
                .find(|d| d.member && d.piece.level == level)
                .map(|d| d.piece);
            cmp.neighbor_ptr = 0;
            cmp.want_cmp = None;
            cmp.watched_wraps = [0, 0];
        }
        let Some(ask) = cmp.ask else {
            next.compare = cmp;
            return;
        };

        // walk the neighbours round-robin
        let mut advanced = true;
        while advanced && usize::from(cmp.neighbor_ptr) < ctx.degree {
            advanced = false;
            let port = Port(usize::from(cmp.neighbor_ptr));
            let u = neighbors[port.index()];
            let j = level as usize;
            let u_has_level =
                j < u.label.strings.len() && u.label.strings.roots[j] != RootSym::Absent;
            if !u_has_level {
                // the neighbour has no level-j fragment: the edge is outgoing
                self.check_outgoing(ctx, own, port, u, ask, level, alarm);
                cmp.neighbor_ptr += 1;
                cmp.want_cmp = None;
                cmp.watched_wraps = [0, 0];
                advanced = true;
                continue;
            }
            // does the neighbour currently show its member level-j piece?
            let shown = u
                .trains
                .iter()
                .filter_map(|t| t.down)
                .find(|d| d.member && d.piece.level == level);
            if let Some(d) = shown {
                self.check_event(ctx, own, port, u, ask, d.piece, level, alarm);
                cmp.neighbor_ptr += 1;
                cmp.want_cmp = None;
                cmp.watched_wraps = [0, 0];
                advanced = true;
                continue;
            }
            // not shown: file a Want and count the neighbour's cycles
            cmp.want_cmp = Some((u.label.sp.own_id, level));
            let cur = [u.trains[0].want, u.trains[1].want];
            for (t, &c) in cur.iter().enumerate() {
                if c < cmp.watched_prev[t] {
                    cmp.watched_wraps[t] = cmp.watched_wraps[t].saturating_add(1);
                }
            }
            cmp.watched_prev = cur;
            if cmp.watched_wraps.iter().all(|&w| w >= MAX_WATCH_WRAPS) {
                // the neighbour's trains completed several full cycles and the
                // needed piece never appeared
                *alarm = true;
                cmp.neighbor_ptr += 1;
                cmp.want_cmp = None;
                cmp.watched_wraps = [0, 0];
            }
        }
        if usize::from(cmp.neighbor_ptr) >= ctx.degree {
            // done with this level: move on
            cmp.level_idx = ((usize::from(cmp.level_idx) + 1) % levels.len()) as u8;
            cmp.ask = None;
            cmp.neighbor_ptr = 0;
            cmp.want_cmp = None;
            cmp.watched_wraps = [0, 0];
        }
        next.compare = cmp;
    }

    /// Checks C1/C2 for an edge known to be outgoing (the neighbour has no
    /// level-`j` fragment).
    #[allow(clippy::too_many_arguments)]
    fn check_outgoing(
        &self,
        ctx: &NodeContext,
        own: &CoreState,
        port: Port,
        u: &CoreState,
        ask: PieceInfo,
        level: u32,
        alarm: &mut bool,
    ) {
        let is_tree = self.is_tree_edge(ctx, port, u);
        let w = self.edge_weight(ctx.node, port, u, is_tree);
        match ask.min_out {
            None => *alarm = true, // the whole-tree fragment has no outgoing edge
            Some(mw) => {
                if w < mw {
                    *alarm = true; // C2
                }
                if self.is_candidate_edge(ctx, own, port, u, level) && mw != w {
                    *alarm = true; // C1
                }
            }
        }
    }

    /// Checks performed when the event `E(v, u, j)` occurs.
    #[allow(clippy::too_many_arguments)]
    fn check_event(
        &self,
        ctx: &NodeContext,
        own: &CoreState,
        port: Port,
        u: &CoreState,
        ask: PieceInfo,
        their: PieceInfo,
        level: u32,
        alarm: &mut bool,
    ) {
        let j = level as usize;
        let is_tree = self.is_tree_edge(ctx, port, u);
        let is_parent = self.parent_port(ctx.node) == Some(port);
        let same_fragment = ask.root_id == their.root_id;
        // Claim 8.3: tree neighbours in the same fragment must hold identical
        // pieces; the strings already tell whether the parent shares the
        // fragment
        if is_parent && own.label.strings.roots.get(j) == Some(&RootSym::NonRoot) && ask != their {
            *alarm = true;
        }
        if same_fragment && ask != their {
            *alarm = true;
        }
        if !same_fragment {
            let w = self.edge_weight(ctx.node, port, u, is_tree);
            match ask.min_out {
                None => *alarm = true,
                Some(mw) => {
                    if w < mw {
                        *alarm = true; // C2
                    }
                    if self.is_candidate_edge(ctx, own, port, u, level) && mw != w {
                        *alarm = true; // C1
                    }
                }
            }
        } else if self.is_candidate_edge(ctx, own, port, u, level) {
            // the candidate edge must be outgoing
            *alarm = true;
        }
    }

    /// Whether the edge behind `port` is this node's candidate edge at the
    /// given level, according to the EndP/Parents strings.
    fn is_candidate_edge(
        &self,
        ctx: &NodeContext,
        own: &CoreState,
        port: Port,
        u: &CoreState,
        level: u32,
    ) -> bool {
        let j = level as usize;
        if j >= own.label.strings.len() {
            return false;
        }
        match own.label.strings.endp[j] {
            EndpSym::Up => self.parent_port(ctx.node) == Some(port),
            EndpSym::Down => {
                u.label.sp.parent_id == Some(ctx.id)
                    && j < u.label.strings.len()
                    && u.label.strings.parents[j]
            }
            _ => false,
        }
    }
}

/// Maximum activations a node delays its train for a wanting neighbour
/// (guards against corrupted `Want` registers).
const DELAY_MAX: u8 = 64;
/// Full cycles of a watched neighbour's trains after which a missing piece is
/// reported.
const MAX_WATCH_WRAPS: u8 = 3;
/// Cycles of both own trains after which the completeness check fires.
const COMPLETENESS_WRAPS: u8 = 2;

fn part_of(s: &CoreState, which: usize) -> &crate::labels::PartLabel {
    if which == TRAIN_TOP {
        &s.label.top_part
    } else {
        &s.label.bottom_part
    }
}

fn top_part_of(s: &CoreState) -> &crate::labels::PartLabel {
    &s.label.top_part
}

fn bottom_part_of(s: &CoreState) -> &crate::labels::PartLabel {
    &s.label.bottom_part
}

impl NodeProgram for CoreVerifier {
    type State = CoreState;

    fn init(&self, ctx: &NodeContext) -> CoreState {
        CoreState {
            label: self.labels[ctx.node.index()].clone(),
            trains: [TrainState::fresh(), TrainState::fresh()],
            compare: CompareState::fresh(),
            seen_levels: 0,
            verdict: Verdict::Working,
        }
    }

    fn step(&self, ctx: &NodeContext, own: &CoreState, neighbors: &[&CoreState]) -> CoreState {
        let mut alarm = false;
        let mut next = own.clone();
        next.verdict = Verdict::Accept;

        // 1. structural 1-round checks
        if !self.structural_ok(ctx, own, neighbors) {
            alarm = true;
        }

        // 2. trains
        let wants_hold = self.neighbor_wants_shown(ctx, own, neighbors);
        self.step_train(
            TRAIN_TOP, ctx, own, neighbors, &mut next, wants_hold, &mut alarm,
        );
        self.step_train(
            TRAIN_BOTTOM,
            ctx,
            own,
            neighbors,
            &mut next,
            wants_hold,
            &mut alarm,
        );

        // 3. comparisons
        self.step_compare(ctx, own, neighbors, &mut next, &mut alarm);

        // 4. completeness (cycle-set) check of §8
        if next.trains.iter().all(|t| t.wraps >= COMPLETENESS_WRAPS) {
            for j in own.label.strings.levels_present() {
                if next.seen_levels & (1u64 << (j as u32).min(63)) == 0 {
                    alarm = true;
                }
            }
            next.seen_levels = 0;
            for t in &mut next.trains {
                t.wraps = 0;
            }
        }

        if alarm {
            next.verdict = Verdict::Reject;
        }
        next
    }

    fn verdict(&self, _ctx: &NodeContext, state: &CoreState) -> Verdict {
        state.verdict
    }

    fn state_bits(&self, ctx: &NodeContext, state: &CoreState) -> u64 {
        let g = &self.graph;
        let max_id = g.nodes().map(|v| g.id(v)).max().unwrap_or(1);
        let max_w = g.edges().iter().map(|e| e.weight).max().unwrap_or(1);
        let n = g.node_count();
        let piece_bits = PieceInfo::bits(max_id, max_w, state.label.strings.len().max(1));
        let train_bits = 2 * (8 + 9 + 8 + 8 + (8 + piece_bits) + (9 + piece_bits) + 48);
        let compare_bits = 8 + piece_bits + 16 + (64 + 32) + 16 + 16;
        let _ = ctx;
        state.label.bits(max_id, max_w, n)
            + train_bits
            + compare_bits
            + state.label.strings.len() as u64 // seen_levels bitmask
            + 2
    }

    fn name(&self) -> &str {
        "core-mst-verifier"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::marker::Marker;
    use smst_graph::generators::random_connected_graph;
    use smst_graph::mst::kruskal;
    use smst_labeling::Instance;
    use smst_sim::SyncRunner;

    fn setup(n: usize, m: usize, seed: u64) -> (Instance, CoreVerifier) {
        let g = random_connected_graph(n, m, seed);
        let tree = kruskal(&g).rooted_at(&g, NodeId(0)).unwrap();
        let inst = Instance::from_tree(g, &tree);
        let (labels, _) = Marker.label(&inst).unwrap();
        let verifier = CoreVerifier::new(inst.graph.clone(), inst.components.clone(), labels);
        (inst, verifier)
    }

    /// A generous synchronous-time budget: polylogarithmic in n.
    fn budget(n: usize) -> usize {
        let log_n = (n.max(2) as f64).log2().ceil() as usize;
        600 * log_n * log_n * log_n + 600
    }

    #[test]
    fn correct_instance_is_accepted_and_stays_accepted() {
        let (inst, verifier) = setup(24, 60, 1);
        let n = inst.node_count();
        let net = verifier.network();
        let mut runner = SyncRunner::new(&verifier, net);
        runner.run_rounds(budget(n));
        assert!(
            runner.network().alarming_nodes(&verifier).is_empty(),
            "no node may reject a correct, marker-labelled instance"
        );
        assert!(runner.network().all_accept(&verifier));
    }

    #[test]
    fn every_level_piece_is_eventually_seen() {
        let (inst, verifier) = setup(32, 80, 2);
        let n = inst.node_count();
        let net = verifier.network();
        let mut runner = SyncRunner::new(&verifier, net);
        runner.run_rounds(budget(n));
        // the completeness check never fired, so the verdict is Accept
        assert!(runner.network().all_accept(&verifier));
    }

    #[test]
    fn memory_is_logarithmic() {
        let (inst, verifier) = setup(64, 160, 3);
        let net = verifier.network();
        let bits = net.memory_bits(&verifier);
        let log_n = (inst.node_count() as f64).log2();
        for b in bits {
            assert!(
                (b as f64) < 120.0 * log_n + 300.0,
                "{b} bits is not O(log n)"
            );
        }
    }
}
