//! An **offline, in-workspace stand-in** for the [`proptest`] crate.
//!
//! The build environment of this repository has no access to crates.io, so
//! this crate re-implements the (small) part of proptest's API the workspace
//! tests use: the [`proptest!`] macro with `name in strategy` bindings, the
//! `prop_assert*` / [`prop_assume!`] macros, [`ProptestConfig::with_cases`],
//! integer-range and boolean strategies, tuple strategies, and
//! [`collection::vec`].
//!
//! Differences from the real crate, by design:
//!
//! * **no shrinking** — a failing case reports its inputs but is not
//!   minimized;
//! * **deterministic runs** — the RNG is seeded from the test name, so a
//!   failure always reproduces (there is no `PROPTEST_` env handling);
//! * strategies are plain value generators (no `prop_map`/`prop_filter`
//!   combinators beyond what the workspace uses).
//!
//! If the repository ever gains registry access, deleting this crate and the
//! corresponding `[dependencies]` path entries restores the real proptest
//! without touching any test code.
//!
//! [`proptest`]: https://docs.rs/proptest

#![forbid(unsafe_code)]

use smst_rng::SeedableRng;
use std::fmt;
use std::ops::Range;

/// Test-case failure raised by the `prop_assert*` macros.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Execution parameters of a [`proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The deterministic RNG driving a test; seeded from the test's name.
pub type TestRng = smst_rng::Pcg64;

/// Builds the per-test RNG (FNV-1a over the test name, so each test gets an
/// independent but reproducible stream).
pub fn rng_for(test_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(h)
}

/// A generator of random values (the sampling half of proptest's trait).
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                smst_rng::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};

    /// Uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform boolean strategy (`proptest::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            smst_rng::Rng::gen(rng)
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A length distribution for [`vec()`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end.max(r.start + 1),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    /// Generates `Vec`s whose elements come from `element` and whose length
    /// comes from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = smst_rng::Rng::gen_range(rng, self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a test module needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Defines property tests. See the crate docs for the supported subset.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}, "),+),
                        $(&$arg),+
                    );
                    let result: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = result {
                        panic!(
                            "proptest case {}/{} failed: {}\n  inputs: {}",
                            case + 1,
                            config.cases,
                            e,
                            inputs
                        );
                    }
                }
            }
        )+
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )+
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )+
        }
    };
}

/// `assert!` that reports the failing inputs instead of unwinding through
/// them (returns an `Err` from the case closure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` for property tests.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+),
            l,
            r
        );
    }};
}

/// `assert_ne!` for property tests.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "{}\n  both: {:?}",
            format!($($fmt)+),
            l
        );
    }};
}

/// Skips the current case when its inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            // no shrinking / rejection accounting: an assumed-away case
            // simply passes
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        use smst_rng::RngCore;
        let mut a = crate::rng_for("x");
        let mut b = crate::rng_for("x");
        let mut c = crate::rng_for("y");
        assert_eq!(a.next_u64(), b.next_u64());
        let _ = c.next_u64();
    }

    proptest! {
        #[test]
        fn ranges_respected(x in 3usize..9, y in 0u64..5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn tuples_and_vecs(v in crate::collection::vec((0usize..4, 0usize..4), 0..10)) {
            prop_assert!(v.len() < 10);
            for (a, b) in v {
                prop_assert!(a < 4 && b < 4);
            }
        }

        #[test]
        fn bools_and_assume(b in crate::bool::ANY, x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
            let _ = b;
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_applies(x in 0u8..1) {
            prop_assert_eq!(x, 0);
        }
    }
}
