//! # smst-sim
//!
//! A discrete, shared-memory network simulator implementing the execution
//! model of Korman–Kutten–Masuzawa (§2.1–§2.2 of the paper):
//!
//! * every node owns a bounded *register* (its public state) that all of its
//!   neighbours can read;
//! * in the **synchronous** model, a round consists of every node reading all
//!   neighbour registers and rewriting its own register ("ideal time");
//! * in the **asynchronous** model, a *daemon* activates one node at a time;
//!   a time unit elapses once every node has been activated at least once
//!   since the previous time unit (the standard round-normalization of a
//!   strongly fair distributed daemon);
//! * *transient faults* arbitrarily corrupt the registers of any subset of
//!   nodes; self-stabilizing programs must recover (or, for verifiers,
//!   detect) from any initial configuration.
//!
//! The crate provides:
//!
//! * [`program::NodeProgram`] — the node-level state machine interface all
//!   distributed algorithms in the workspace implement;
//! * [`network::Network`] — a graph plus per-node execution contexts;
//! * [`sync::SyncRunner`] — the synchronous round executor;
//! * [`asynch::AsyncRunner`] and [`asynch::Daemon`] — asynchronous execution
//!   under round-robin, random, or adversarial daemons;
//! * [`asynch::BatchDaemon`] — the distributed-daemon generalization
//!   (batches of simultaneous activations; the central [`asynch::Daemon`]
//!   is its batch-width-1 special case via [`asynch::ChunkedDaemon`]);
//! * [`faults`] — transient-fault injection;
//! * [`schedule`] — recurring fault schedules (periodic / burst /
//!   Poisson-like arrivals) for verify-forever chaos campaigns, with
//!   per-wave detection/quiescence accounting types;
//! * [`memory`] — per-node memory-size accounting in bits;
//! * [`metrics`] — detection time / detection distance / stabilization
//!   statistics;
//! * [`observer`] — the per-round measurement hook ([`RoundObserver`])
//!   every runner in the workspace invokes, with a [`RecordingObserver`]
//!   for benches and tests and a [`TeeObserver`] to fan one stream out to
//!   several sinks (e.g. recording plus telemetry);
//! * [`trace`] — a bounded execution trace for debugging and examples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asynch;
pub mod faults;
pub mod memory;
pub mod metrics;
pub mod network;
pub mod observer;
pub mod program;
pub mod schedule;
pub mod sync;
pub mod trace;

pub use asynch::{ActivationBatch, AsyncRunner, BatchDaemon, ChunkedDaemon, Daemon};
pub use faults::FaultPlan;
pub use memory::MemoryUsage;
pub use metrics::{DetectionReport, ExecutionStats};
pub use network::Network;
pub use observer::{RecordingObserver, RoundObserver, RoundStats, TeeObserver};
pub use program::{NodeContext, NodeProgram, Verdict};
pub use schedule::{Arrival, FaultSchedule, WaveStats};
pub use sync::SyncRunner;
