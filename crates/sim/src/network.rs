//! A network: a graph plus the per-node contexts and registers of a running
//! program.

use crate::program::{NodeContext, NodeProgram, Verdict};
use smst_graph::{NodeId, WeightedGraph};

/// A network executing a [`NodeProgram`]: the topology, the per-node static
/// contexts, and the current register of every node.
///
/// The network itself is scheduler-agnostic; [`crate::sync::SyncRunner`] and
/// [`crate::asynch::AsyncRunner`] drive it.
#[derive(Debug, Clone)]
pub struct Network<P: NodeProgram> {
    graph: WeightedGraph,
    contexts: Vec<NodeContext>,
    states: Vec<P::State>,
}

impl<P: NodeProgram> Network<P> {
    /// Creates a network over `graph` with every node initialized by
    /// `program.init`.
    pub fn new(program: &P, graph: WeightedGraph) -> Self {
        let contexts: Vec<NodeContext> = graph
            .nodes()
            .map(|v| NodeContext::for_node(&graph, v))
            .collect();
        let states: Vec<P::State> = contexts.iter().map(|ctx| program.init(ctx)).collect();
        Network {
            graph,
            contexts,
            states,
        }
    }

    /// Creates a network with explicitly provided initial registers (used to
    /// model arbitrary initial configurations / adversarial initialization).
    ///
    /// # Panics
    ///
    /// Panics if `states.len()` differs from the number of nodes.
    pub fn with_states(graph: WeightedGraph, states: Vec<P::State>) -> Self {
        assert_eq!(
            states.len(),
            graph.node_count(),
            "one initial state per node is required"
        );
        let contexts: Vec<NodeContext> = graph
            .nodes()
            .map(|v| NodeContext::for_node(&graph, v))
            .collect();
        Network {
            graph,
            contexts,
            states,
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &WeightedGraph {
        &self.graph
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// The static context of a node.
    pub fn context(&self, v: NodeId) -> &NodeContext {
        &self.contexts[v.index()]
    }

    /// The current register of a node.
    pub fn state(&self, v: NodeId) -> &P::State {
        &self.states[v.index()]
    }

    /// Mutable access to the register of a node (used by fault injection).
    pub fn state_mut(&mut self, v: NodeId) -> &mut P::State {
        &mut self.states[v.index()]
    }

    /// All registers, indexed by node.
    pub fn states(&self) -> &[P::State] {
        &self.states
    }

    /// Replaces the register of a node.
    pub fn set_state(&mut self, v: NodeId, state: P::State) {
        self.states[v.index()] = state;
    }

    /// Swaps the whole register vector with `other` (the double-buffer hand-
    /// over used by [`crate::sync::SyncRunner`]: the freshly computed round
    /// becomes current and the previous round becomes the scratch buffer).
    ///
    /// # Panics
    ///
    /// Panics if `other` does not hold one state per node.
    pub fn swap_states(&mut self, other: &mut Vec<P::State>) {
        assert_eq!(
            other.len(),
            self.states.len(),
            "one state per node is required"
        );
        std::mem::swap(&mut self.states, other);
    }

    /// Performs one atomic activation of node `v`: reads the neighbours'
    /// registers and rewrites `v`'s register. Returns `true` if the register
    /// changed (assuming `PartialEq` is not required, change detection is by
    /// the caller; this method always writes).
    pub fn activate(&mut self, program: &P, v: NodeId) {
        let ctx = &self.contexts[v.index()];
        let neighbor_states: Vec<&P::State> = self
            .graph
            .incident_edges(v)
            .iter()
            .map(|&e| &self.states[self.graph.edge(e).other(v).index()])
            .collect();
        let next = program.step(ctx, &self.states[v.index()], &neighbor_states);
        self.states[v.index()] = next;
    }

    /// Computes (without applying) the next register of node `v`.
    pub fn next_state(&self, program: &P, v: NodeId) -> P::State {
        let ctx = &self.contexts[v.index()];
        let neighbor_states: Vec<&P::State> = self
            .graph
            .incident_edges(v)
            .iter()
            .map(|&e| &self.states[self.graph.edge(e).other(v).index()])
            .collect();
        program.step(ctx, &self.states[v.index()], &neighbor_states)
    }

    /// The verdicts of all nodes under the current configuration.
    pub fn verdicts(&self, program: &P) -> Vec<Verdict> {
        self.graph
            .nodes()
            .map(|v| program.verdict(&self.contexts[v.index()], &self.states[v.index()]))
            .collect()
    }

    /// The nodes currently raising an alarm ([`Verdict::Reject`]).
    pub fn alarming_nodes(&self, program: &P) -> Vec<NodeId> {
        self.graph
            .nodes()
            .filter(|&v| {
                program.verdict(&self.contexts[v.index()], &self.states[v.index()])
                    == Verdict::Reject
            })
            .collect()
    }

    /// `true` if at least one node raises an alarm.
    pub fn any_alarm(&self, program: &P) -> bool {
        !self.alarming_nodes(program).is_empty()
    }

    /// `true` if every node outputs [`Verdict::Accept`].
    pub fn all_accept(&self, program: &P) -> bool {
        self.verdicts(program).iter().all(|&v| v == Verdict::Accept)
    }

    /// Per-node register sizes in bits, as reported by the program.
    pub fn memory_bits(&self, program: &P) -> Vec<u64> {
        self.graph
            .nodes()
            .map(|v| program.state_bits(&self.contexts[v.index()], &self.states[v.index()]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::NodeContext;
    use smst_graph::generators::path_graph;

    /// Each node repeatedly adopts the minimum identity it has seen.
    struct MinId;

    impl NodeProgram for MinId {
        type State = u64;

        fn init(&self, ctx: &NodeContext) -> u64 {
            ctx.id
        }

        fn step(&self, _ctx: &NodeContext, own: &u64, neighbors: &[&u64]) -> u64 {
            neighbors.iter().fold(*own, |acc, &&x| acc.min(x))
        }

        fn verdict(&self, _ctx: &NodeContext, state: &u64) -> Verdict {
            if *state == 0 {
                Verdict::Accept
            } else {
                Verdict::Working
            }
        }

        fn state_bits(&self, _ctx: &NodeContext, _state: &u64) -> u64 {
            64
        }
    }

    #[test]
    fn activation_reads_neighbors() {
        let g = path_graph(3, 0);
        let mut net: Network<MinId> = Network::new(&MinId, g);
        // node 2 initially holds id 2
        assert_eq!(*net.state(NodeId(2)), 2);
        net.activate(&MinId, NodeId(2));
        // after one activation it sees node 1's register (1)
        assert_eq!(*net.state(NodeId(2)), 1);
    }

    #[test]
    fn verdicts_and_alarms() {
        let g = path_graph(3, 0);
        let net: Network<MinId> = Network::new(&MinId, g);
        let verdicts = net.verdicts(&MinId);
        assert_eq!(verdicts[0], Verdict::Accept);
        assert_eq!(verdicts[2], Verdict::Working);
        assert!(!net.any_alarm(&MinId));
        assert!(!net.all_accept(&MinId));
    }

    #[test]
    fn with_states_and_mutation() {
        let g = path_graph(2, 0);
        let mut net: Network<MinId> = Network::with_states(g, vec![7, 9]);
        assert_eq!(*net.state(NodeId(1)), 9);
        *net.state_mut(NodeId(1)) = 3;
        assert_eq!(*net.state(NodeId(1)), 3);
        net.set_state(NodeId(0), 5);
        assert_eq!(net.states(), &[5, 3]);
        assert_eq!(net.memory_bits(&MinId), vec![64, 64]);
    }

    #[test]
    #[should_panic(expected = "one initial state per node")]
    fn with_states_checks_length() {
        let g = path_graph(3, 0);
        let _: Network<MinId> = Network::with_states(g, vec![1]);
    }
}
