//! Detection-time, detection-distance and stabilization statistics.
//!
//! These are the paper's evaluation quantities (§2.4–§2.5):
//!
//! * **detection time** — rounds (or asynchronous time units) from the moment
//!   the faults cease until some node raises an alarm;
//! * **detection distance** — for each faulty node, the hop distance to the
//!   closest node that raises an alarm within the detection time; the scheme's
//!   detection distance is the maximum over faulty nodes;
//! * **stabilization time** — for detection-based self-stabilizing
//!   construction algorithms, the time from an arbitrary configuration until
//!   the output is correct and stays correct.

use smst_graph::{NodeId, WeightedGraph};

/// Summary of one execution (either scheduler).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecutionStats {
    /// Synchronous rounds or normalized asynchronous time units executed.
    pub time: usize,
    /// Raw single-node activations (equals `time × n` for the synchronous
    /// scheduler).
    pub activations: usize,
}

/// The outcome of a fault-detection experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetectionReport {
    /// Whether any node raised an alarm within the allotted time.
    pub detected: bool,
    /// Rounds / time units from fault injection to the first alarm.
    pub detection_time: Option<usize>,
    /// The nodes raising an alarm at detection time.
    pub alarm_nodes: Vec<NodeId>,
    /// For each faulty node, the hop distance to the closest alarming node
    /// (aligned with the fault plan's node order).
    pub per_fault_distance: Vec<usize>,
    /// The scheme's detection distance: the maximum of
    /// [`Self::per_fault_distance`].
    pub max_detection_distance: usize,
}

impl DetectionReport {
    /// A report for an execution in which no alarm was raised in time.
    pub fn not_detected() -> Self {
        DetectionReport {
            detected: false,
            detection_time: None,
            alarm_nodes: Vec::new(),
            per_fault_distance: Vec::new(),
            max_detection_distance: usize::MAX,
        }
    }

    /// Builds a report from the detection time, the alarming nodes and the
    /// faulty nodes, computing hop distances in `g`.
    pub fn from_alarms(
        g: &WeightedGraph,
        detection_time: usize,
        alarm_nodes: Vec<NodeId>,
        fault_nodes: &[NodeId],
    ) -> Self {
        let per_fault_distance = detection_distances(g, fault_nodes, &alarm_nodes);
        let max_detection_distance = per_fault_distance.iter().copied().max().unwrap_or(0);
        DetectionReport {
            detected: true,
            detection_time: Some(detection_time),
            alarm_nodes,
            per_fault_distance,
            max_detection_distance,
        }
    }
}

/// For each fault node, the hop distance (in `g`) to the closest alarming
/// node; `usize::MAX` if there are no alarming nodes.
pub fn detection_distances(
    g: &WeightedGraph,
    fault_nodes: &[NodeId],
    alarm_nodes: &[NodeId],
) -> Vec<usize> {
    fault_nodes
        .iter()
        .map(|&f| {
            let dist = g.bfs_distances(f);
            alarm_nodes
                .iter()
                .map(|&a| dist[a.index()])
                .min()
                .unwrap_or(usize::MAX)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use smst_graph::generators::path_graph;

    #[test]
    fn distances_to_closest_alarm() {
        let g = path_graph(6, 0);
        let d = detection_distances(&g, &[NodeId(0), NodeId(5)], &[NodeId(2), NodeId(4)]);
        assert_eq!(d, vec![2, 1]);
    }

    #[test]
    fn no_alarms_gives_max() {
        let g = path_graph(3, 0);
        let d = detection_distances(&g, &[NodeId(1)], &[]);
        assert_eq!(d, vec![usize::MAX]);
    }

    #[test]
    fn report_from_alarms() {
        let g = path_graph(5, 0);
        let r = DetectionReport::from_alarms(&g, 7, vec![NodeId(3)], &[NodeId(0), NodeId(4)]);
        assert!(r.detected);
        assert_eq!(r.detection_time, Some(7));
        assert_eq!(r.per_fault_distance, vec![3, 1]);
        assert_eq!(r.max_detection_distance, 3);
    }

    #[test]
    fn not_detected_report() {
        let r = DetectionReport::not_detected();
        assert!(!r.detected);
        assert_eq!(r.detection_time, None);
        assert_eq!(r.max_detection_distance, usize::MAX);
    }

    #[test]
    fn stats_default() {
        let s = ExecutionStats::default();
        assert_eq!(s.time, 0);
        assert_eq!(s.activations, 0);
    }
}
