//! Transient-fault injection.
//!
//! The paper's adversary may arbitrarily corrupt the state of any subset of
//! nodes (and, before the verifier even starts, may have chosen the labels
//! adversarially). A [`FaultPlan`] names the faulty nodes; applying it rewrites
//! their registers through a caller-supplied mutator, which keeps the injector
//! agnostic of the program's state type while letting each algorithm crate
//! provide "realistic" corruptions (bit flips in labels, pointer rewires,
//! train-buffer scrambling, …).

use crate::network::Network;
use crate::program::NodeProgram;
use smst_graph::NodeId;
use smst_rng::{SeedableRng, SliceRandom, StdRng};

/// A set of nodes hit by a transient fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    nodes: Vec<NodeId>,
}

impl FaultPlan {
    /// A plan hitting exactly the given nodes (duplicates are removed).
    pub fn new<I: IntoIterator<Item = NodeId>>(nodes: I) -> Self {
        let mut nodes: Vec<NodeId> = nodes.into_iter().collect();
        nodes.sort_unstable();
        nodes.dedup();
        FaultPlan { nodes }
    }

    /// A plan hitting a single node.
    pub fn single(node: NodeId) -> Self {
        FaultPlan { nodes: vec![node] }
    }

    /// A plan hitting `f` distinct nodes chosen uniformly at random.
    ///
    /// # Panics
    ///
    /// Panics if `f > n`.
    pub fn random(n: usize, f: usize, seed: u64) -> Self {
        assert!(f <= n, "cannot pick {f} faulty nodes out of {n}");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut all: Vec<NodeId> = (0..n).map(NodeId).collect();
        all.shuffle(&mut rng);
        all.truncate(f);
        Self::new(all)
    }

    /// The faulty nodes.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The number of faults `f`.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Applies the plan to a network: every faulty node's register is passed
    /// to `mutate`, which may rewrite it arbitrarily.
    pub fn apply<P, F>(&self, network: &mut Network<P>, mut mutate: F)
    where
        P: NodeProgram,
        F: FnMut(NodeId, &mut P::State),
    {
        for &v in &self.nodes {
            mutate(v, network.state_mut(v));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{NodeContext, NodeProgram};
    use smst_graph::generators::path_graph;

    struct Stub;
    impl NodeProgram for Stub {
        type State = u32;
        fn init(&self, _ctx: &NodeContext) -> u32 {
            0
        }
        fn step(&self, _ctx: &NodeContext, own: &u32, _neighbors: &[&u32]) -> u32 {
            *own
        }
    }

    #[test]
    fn plan_deduplicates() {
        let plan = FaultPlan::new([NodeId(3), NodeId(1), NodeId(3)]);
        assert_eq!(plan.nodes(), &[NodeId(1), NodeId(3)]);
        assert_eq!(plan.len(), 2);
        assert!(!plan.is_empty());
    }

    #[test]
    fn random_plan_has_f_distinct_nodes() {
        let plan = FaultPlan::random(20, 5, 7);
        assert_eq!(plan.len(), 5);
        let plan2 = FaultPlan::random(20, 5, 7);
        assert_eq!(plan, plan2, "plans are deterministic per seed");
    }

    #[test]
    #[should_panic(expected = "cannot pick")]
    fn random_plan_rejects_too_many_faults() {
        let _ = FaultPlan::random(3, 4, 0);
    }

    #[test]
    fn apply_rewrites_only_planned_nodes() {
        let g = path_graph(4, 0);
        let mut net: Network<Stub> = Network::new(&Stub, g);
        let plan = FaultPlan::new([NodeId(1), NodeId(2)]);
        plan.apply(&mut net, |_v, s| *s = 99);
        assert_eq!(net.states(), &[0, 99, 99, 0]);
    }

    #[test]
    fn single_plan() {
        let plan = FaultPlan::single(NodeId(2));
        assert_eq!(plan.nodes(), &[NodeId(2)]);
    }
}
