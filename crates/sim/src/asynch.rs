//! The asynchronous executor: single-node activations chosen by a daemon.
//!
//! The paper's asynchronous model assumes a distributed daemon with strong
//! fairness and fine-grained atomicity (§2.1). We simulate it with a central
//! daemon that activates one node at a time; *time* is measured in the
//! standard normalized way: a time unit elapses once every node has been
//! activated at least once since the end of the previous time unit. The
//! daemon is free to interleave extra activations of arbitrary nodes inside a
//! time unit, which is how asynchrony (some nodes running much faster than
//! others) is modelled.

use crate::network::Network;
use crate::observer::{RoundObserver, RoundStats};
use crate::program::NodeProgram;
use smst_graph::NodeId;
use smst_rng::{Rng, SeedableRng, SliceRandom, StdRng};

/// One simultaneous batch of activations (original node ids). Every
/// activation of a batch reads the registers as they were at the start of
/// the batch, so the batch is order-independent by construction.
pub type ActivationBatch = Vec<NodeId>;

/// The **distributed daemon** generalization of [`Daemon`]: one time unit
/// is a sequence of *batches* of simultaneous activations instead of a
/// sequence of single activations.
///
/// The central daemon (one node at a time) is the batch-width-1 special
/// case; genuinely distributed daemons can activate arbitrary node *sets*
/// simultaneously, which the central enum cannot express — the
/// distributed-daemon literature (and the KMW-style lower-bound
/// constructions) draw their worst cases from exactly this extra freedom.
///
/// # Contract
///
/// * **Fairness** — the union of one unit's batches covers every node at
///   least once (the standard round-normalization of a strongly fair
///   daemon); executors count normalized time units under this assumption.
/// * **Determinism** — `unit_batches` is a pure function of
///   `(self, n, unit_index)`: any randomness must come from seeds stored in
///   the daemon, never from wall-clock or thread identity.
///
/// Both properties are pinned for every in-workspace implementation by the
/// `smst-adversary` property tests.
pub trait BatchDaemon: std::fmt::Debug + Send + Sync {
    /// The batched activation sequence of one time unit for `n` nodes.
    fn unit_batches(&self, n: usize, unit_index: usize) -> Vec<ActivationBatch>;

    /// Visits one unit's batches in order **without materializing owned
    /// vectors** — the executor hot path. Must be equivalent to iterating
    /// [`unit_batches`](Self::unit_batches) (pinned by the `smst-adversary`
    /// property tests); implementations holding flat or precomputed
    /// schedules override it to lend slices instead of cloning per unit.
    fn for_each_batch(&self, n: usize, unit_index: usize, visit: &mut dyn FnMut(&[NodeId])) {
        for batch in self.unit_batches(n, unit_index) {
            visit(&batch);
        }
    }

    /// Clones the daemon behind the object-safe interface (lets
    /// scenario specs holding `Box<dyn BatchDaemon>` stay `Clone`).
    fn clone_box(&self) -> Box<dyn BatchDaemon>;

    /// A short, stable descriptor for artifacts and labels.
    fn describe(&self) -> String {
        format!("{self:?}")
    }
}

impl Clone for Box<dyn BatchDaemon> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// The central daemon *is* a batch daemon: every activation is its own
/// singleton batch.
impl BatchDaemon for Daemon {
    fn unit_batches(&self, n: usize, unit_index: usize) -> Vec<ActivationBatch> {
        self.schedule(n, unit_index)
            .into_iter()
            .map(|v| vec![v])
            .collect()
    }

    fn for_each_batch(&self, n: usize, unit_index: usize, visit: &mut dyn FnMut(&[NodeId])) {
        for v in self.schedule(n, unit_index) {
            visit(std::slice::from_ref(&v));
        }
    }

    fn clone_box(&self) -> Box<dyn BatchDaemon> {
        Box::new(self.clone())
    }

    fn describe(&self) -> String {
        match self {
            Daemon::RoundRobin => "round-robin".to_string(),
            Daemon::Random { seed, extra_factor } => {
                format!("random(seed={seed},extra={extra_factor})")
            }
            Daemon::Adversarial {
                pivot,
                pivot_repeats,
            } => format!("pivot(pivot={pivot},repeats={pivot_repeats})"),
        }
    }
}

/// A central [`Daemon`] schedule executed in uniform chunks of `batch`
/// simultaneous activations — exactly the semantics the sharded engine ran
/// before the [`BatchDaemon`] generalization. `batch == 1` replays the
/// central daemon activation-for-activation.
#[derive(Debug, Clone)]
pub struct ChunkedDaemon {
    /// The central daemon providing the activation sequence.
    pub daemon: Daemon,
    /// Simultaneous activations per batch (clamped to at least 1).
    pub batch: usize,
}

impl ChunkedDaemon {
    /// Chunks `daemon`'s schedule into batches of `batch` activations.
    pub fn new(daemon: Daemon, batch: usize) -> Self {
        ChunkedDaemon {
            daemon,
            batch: batch.max(1),
        }
    }
}

impl BatchDaemon for ChunkedDaemon {
    fn unit_batches(&self, n: usize, unit_index: usize) -> Vec<ActivationBatch> {
        self.daemon
            .schedule(n, unit_index)
            .chunks(self.batch.max(1))
            .map(<[NodeId]>::to_vec)
            .collect()
    }

    fn for_each_batch(&self, n: usize, unit_index: usize, visit: &mut dyn FnMut(&[NodeId])) {
        // one flat schedule Vec per unit, chunked by slice — no per-batch
        // allocation (this was the engine's pre-trait execution shape)
        for chunk in self
            .daemon
            .schedule(n, unit_index)
            .chunks(self.batch.max(1))
        {
            visit(chunk);
        }
    }

    fn clone_box(&self) -> Box<dyn BatchDaemon> {
        Box::new(self.clone())
    }

    fn describe(&self) -> String {
        format!("{}@batch={}", self.daemon.describe(), self.batch)
    }
}

/// The activation policy of the asynchronous scheduler.
#[derive(Debug, Clone)]
pub enum Daemon {
    /// Every time unit activates the nodes once each, in index order.
    /// This is the most benign asynchronous schedule (equivalent to a
    /// synchronous round executed sequentially).
    RoundRobin,
    /// Every time unit activates the nodes once each in a fresh random order,
    /// plus a random number of extra activations of random nodes
    /// (up to `extra_factor` × n), modelling nodes that run at very different
    /// speeds.
    Random {
        /// PRNG seed (executions are reproducible per seed).
        seed: u64,
        /// Maximum number of extra activations per time unit, as a multiple
        /// of the node count.
        extra_factor: usize,
    },
    /// Every time unit activates the nodes once each in *reverse* index
    /// order and repeats a fixed pivot node several times first — a simple
    /// adversarial schedule that maximally delays information flowing from
    /// low-index to high-index nodes.
    Adversarial {
        /// The node the daemon favours with extra activations.
        pivot: usize,
        /// How many extra activations the pivot receives per time unit.
        pivot_repeats: usize,
    },
}

impl Daemon {
    /// The activation sequence of one time unit for a network of `n` nodes.
    ///
    /// Public because the sharded execution engine replays exactly this
    /// sequence (in batches): a single source of truth keeps its
    /// "batch width 1 equals the central daemon" contract immune to future
    /// schedule changes. The sequence is a pure function of
    /// `(self, n, unit_index)`.
    pub fn schedule(&self, n: usize, unit_index: usize) -> Vec<NodeId> {
        match self {
            Daemon::RoundRobin => (0..n).map(NodeId).collect(),
            Daemon::Random { seed, extra_factor } => {
                let mut rng = StdRng::seed_from_u64(seed.wrapping_add(unit_index as u64));
                let mut order: Vec<NodeId> = (0..n).map(NodeId).collect();
                order.shuffle(&mut rng);
                let extras = if *extra_factor == 0 || n == 0 {
                    0
                } else {
                    rng.gen_range(0..=extra_factor * n)
                };
                for _ in 0..extras {
                    let v = NodeId(rng.gen_range(0..n));
                    let pos = rng.gen_range(0..=order.len());
                    order.insert(pos, v);
                }
                order
            }
            Daemon::Adversarial {
                pivot,
                pivot_repeats,
            } => {
                let mut order = Vec::with_capacity(n + pivot_repeats);
                if n > 0 {
                    for _ in 0..*pivot_repeats {
                        order.push(NodeId(pivot % n));
                    }
                }
                order.extend((0..n).rev().map(NodeId));
                order
            }
        }
    }
}

/// Runs a [`Network`] under an asynchronous daemon, counting normalized time
/// units and raw activations.
#[derive(Debug)]
pub struct AsyncRunner<'p, P: NodeProgram> {
    program: &'p P,
    network: Network<P>,
    daemon: Daemon,
    time_units: usize,
    activations: usize,
    /// Per-time-unit measurement hook; stats are computed only while
    /// attached.
    observer: Option<Box<dyn RoundObserver>>,
}

impl<'p, P: NodeProgram> AsyncRunner<'p, P> {
    /// Creates a runner over an existing network with the given daemon.
    pub fn new(program: &'p P, network: Network<P>, daemon: Daemon) -> Self {
        AsyncRunner {
            program,
            network,
            daemon,
            time_units: 0,
            activations: 0,
            observer: None,
        }
    }

    /// Attaches a [`RoundObserver`] invoked after every time unit
    /// (replacing any previous one). Observation costs one verdict sweep
    /// per unit; results never change.
    pub fn set_observer(&mut self, observer: Box<dyn RoundObserver>) {
        self.observer = Some(observer);
    }

    /// Detaches and returns the current observer, if any.
    pub fn take_observer(&mut self) -> Option<Box<dyn RoundObserver>> {
        self.observer.take()
    }

    /// Normalized asynchronous time units elapsed so far.
    pub fn time_units(&self) -> usize {
        self.time_units
    }

    /// Raw single-node activations executed so far.
    pub fn activations(&self) -> usize {
        self.activations
    }

    /// The network being executed.
    pub fn network(&self) -> &Network<P> {
        &self.network
    }

    /// Mutable access to the network (used for mid-execution fault injection).
    pub fn network_mut(&mut self) -> &mut Network<P> {
        &mut self.network
    }

    /// The program being executed.
    pub fn program(&self) -> &P {
        self.program
    }

    /// Consumes the runner, returning the network.
    pub fn into_network(self) -> Network<P> {
        self.network
    }

    /// Executes one normalized time unit (every node activated at least once).
    pub fn step_time_unit(&mut self) {
        // smst-lint: allow(clock, reason = "observer-gated unit timing; wall time never feeds round state")
        let start = self.observer.is_some().then(std::time::Instant::now);
        let schedule = self
            .daemon
            .schedule(self.network.node_count(), self.time_units);
        let unit_activations = schedule.len();
        for v in schedule {
            self.network.activate(self.program, v);
            self.activations += 1;
        }
        self.time_units += 1;
        if let Some(mut observer) = self.observer.take() {
            observer.on_round(&RoundStats {
                round: self.time_units - 1,
                alarms: self.network.alarming_nodes(self.program).len(),
                activations: unit_activations,
                halo_bytes: 0,
                // sequential activations: the whole unit is compute
                dispatch_ns: 0,
                compute_ns: start.map_or(0, |t| t.elapsed().as_nanos() as u64),
                barrier_ns: 0,
                exchange_ns: 0,
            });
            self.observer = Some(observer);
        }
    }

    /// Executes `count` time units.
    pub fn run_time_units(&mut self, count: usize) {
        for _ in 0..count {
            self.step_time_unit();
        }
    }

    /// Runs until `stop` holds (checked after every time unit) or until
    /// `max_units` additional units have elapsed; returns the number of units
    /// executed by this call if the condition was met.
    pub fn run_until<F>(&mut self, max_units: usize, mut stop: F) -> Option<usize>
    where
        F: FnMut(&Network<P>) -> bool,
    {
        if stop(&self.network) {
            return Some(0);
        }
        for executed in 1..=max_units {
            self.step_time_unit();
            if stop(&self.network) {
                return Some(executed);
            }
        }
        None
    }

    /// Runs until some node raises an alarm; returns the detection time in
    /// asynchronous time units.
    pub fn run_until_alarm(&mut self, max_units: usize) -> Option<usize> {
        let program = self.program;
        self.run_until(max_units, |net| net.any_alarm(program))
    }

    /// Runs until every node accepts.
    pub fn run_until_all_accept(&mut self, max_units: usize) -> Option<usize> {
        let program = self.program;
        self.run_until(max_units, |net| net.all_accept(program))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{NodeContext, Verdict};
    use smst_graph::generators::path_graph;

    struct MinId;

    impl NodeProgram for MinId {
        type State = u64;
        fn init(&self, ctx: &NodeContext) -> u64 {
            ctx.id
        }
        fn step(&self, _ctx: &NodeContext, own: &u64, neighbors: &[&u64]) -> u64 {
            neighbors.iter().fold(*own, |acc, &&x| acc.min(x))
        }
        fn verdict(&self, _ctx: &NodeContext, state: &u64) -> Verdict {
            if *state == 0 {
                Verdict::Accept
            } else {
                Verdict::Working
            }
        }
    }

    #[test]
    fn round_robin_converges_within_diameter_units() {
        let g = path_graph(8, 0);
        let d = g.diameter().unwrap();
        let net = Network::new(&MinId, g);
        let mut runner = AsyncRunner::new(&MinId, net, Daemon::RoundRobin);
        let t = runner.run_until_all_accept(100).unwrap();
        // index-order round robin on a path rooted at node 0 converges in 1 unit
        assert!(t <= d);
        assert!(runner.activations() >= runner.network().node_count());
    }

    #[test]
    fn random_daemon_is_fair_and_converges() {
        let g = path_graph(12, 0);
        let net = Network::new(&MinId, g);
        let mut runner = AsyncRunner::new(
            &MinId,
            net,
            Daemon::Random {
                seed: 3,
                extra_factor: 2,
            },
        );
        let t = runner.run_until_all_accept(50).unwrap();
        assert!(t <= 12, "random daemon should converge within n units");
    }

    #[test]
    fn adversarial_daemon_still_fair() {
        let g = path_graph(6, 0);
        let net = Network::new(&MinId, g);
        let mut runner = AsyncRunner::new(
            &MinId,
            net,
            Daemon::Adversarial {
                pivot: 5,
                pivot_repeats: 4,
            },
        );
        let t = runner.run_until_all_accept(50).unwrap();
        assert!(t <= 6);
    }

    #[test]
    fn daemon_schedules_cover_all_nodes() {
        for daemon in [
            Daemon::RoundRobin,
            Daemon::Random {
                seed: 9,
                extra_factor: 1,
            },
            Daemon::Adversarial {
                pivot: 2,
                pivot_repeats: 3,
            },
        ] {
            let sched = daemon.schedule(7, 0);
            for v in 0..7 {
                assert!(
                    sched.contains(&NodeId(v)),
                    "{daemon:?} misses node {v} in its time unit"
                );
            }
        }
    }

    #[test]
    fn central_daemon_as_batch_daemon_is_singleton_batches() {
        for daemon in [
            Daemon::RoundRobin,
            Daemon::Random {
                seed: 11,
                extra_factor: 1,
            },
            Daemon::Adversarial {
                pivot: 1,
                pivot_repeats: 2,
            },
        ] {
            for unit in 0..3 {
                let flat: Vec<NodeId> = daemon
                    .unit_batches(9, unit)
                    .into_iter()
                    .flat_map(|b| {
                        assert_eq!(b.len(), 1, "central daemon batches are singletons");
                        b
                    })
                    .collect();
                assert_eq!(flat, daemon.schedule(9, unit), "{daemon:?}");
            }
        }
    }

    #[test]
    fn chunked_daemon_flattens_to_the_central_schedule() {
        let daemon = Daemon::Random {
            seed: 4,
            extra_factor: 2,
        };
        for batch in [1usize, 3, 7, 100] {
            let chunked = ChunkedDaemon::new(daemon.clone(), batch);
            for unit in 0..3 {
                let batches = chunked.unit_batches(10, unit);
                assert!(batches.iter().all(|b| b.len() <= batch));
                let flat: Vec<NodeId> = batches.into_iter().flatten().collect();
                assert_eq!(flat, daemon.schedule(10, unit), "batch {batch}");
            }
        }
    }

    #[test]
    fn boxed_batch_daemons_clone_and_describe() {
        let boxed: Box<dyn BatchDaemon> = Box::new(ChunkedDaemon::new(Daemon::RoundRobin, 4));
        let cloned = boxed.clone();
        assert_eq!(boxed.unit_batches(6, 0), cloned.unit_batches(6, 0));
        assert_eq!(cloned.describe(), "round-robin@batch=4");
        assert_eq!(Daemon::RoundRobin.describe(), "round-robin");
    }

    #[test]
    fn timeout_returns_none() {
        let g = path_graph(20, 0);
        let net = Network::new(&MinId, g);
        let mut runner = AsyncRunner::new(
            &MinId,
            net,
            Daemon::Adversarial {
                pivot: 0,
                pivot_repeats: 1,
            },
        );
        // reverse order maximally delays the spread from node 0: needs ~n units
        assert_eq!(runner.run_until_all_accept(1), None);
        assert_eq!(runner.time_units(), 1);
    }
}
