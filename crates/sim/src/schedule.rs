//! Recurring fault schedules: the verify-forever workload.
//!
//! The paper's point is *perpetual* verification — the verifier never
//! terminates, and transient faults keep arriving for as long as the system
//! runs. A [`FaultSchedule`] makes that workload first-class: a seeded,
//! deterministic arrival process ([`Arrival`]) that says at which steps a
//! fault **wave** fires, plus a per-wave [`FaultPlan`] derived from the
//! schedule's master seed. Everything is a pure function of
//! `(schedule, step)` — no history, no wall clock — so a chaos campaign is
//! exactly as reproducible as a single-burst experiment, at any thread
//! count and on any backend.
//!
//! The schedule deliberately knows nothing about execution: drivers (the
//! engine's chaos loop, benches, examples) ask [`FaultSchedule::wave_at`]
//! between steps and apply the returned plan through the usual
//! caller-supplied mutator.

use crate::faults::FaultPlan;
use smst_rng::{Rng, RngCore, SeedableRng, SplitMix64, StdRng};

/// The arrival process of a [`FaultSchedule`]: at which steps waves fire.
#[derive(Debug, Clone, PartialEq)]
pub enum Arrival {
    /// A wave every `period` steps, first at `offset`.
    Periodic {
        /// Steps between waves (≥ 1).
        period: usize,
        /// The step of the first wave.
        offset: usize,
    },
    /// Waves at exactly the given steps (sorted, deduplicated).
    Burst {
        /// The firing steps, ascending.
        steps: Vec<usize>,
    },
    /// Memoryless (Poisson-like in discrete time): at every step a wave
    /// fires independently with probability `rate`, decided by a draw
    /// counter-seeded from `(seed, step)` — arrival at step `t` never
    /// depends on what happened before `t`.
    Poisson {
        /// Per-step firing probability in `[0, 1]`.
        rate: f64,
    },
}

/// A seeded, deterministic recurring fault schedule.
///
/// Composes with the existing fault machinery: each wave is an ordinary
/// [`FaultPlan`] (node selection seeded per wave from the master seed), and
/// what the faults *do* to a register stays with the caller's mutator —
/// e.g. `smst-core`'s `FaultKind` corruptions.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSchedule {
    /// When waves fire.
    pub arrival: Arrival,
    /// Distinct nodes hit per wave (clamped to the node count when a plan
    /// is drawn).
    pub faults_per_wave: usize,
    /// Master seed: wave `w`'s node selection is seeded from
    /// `(seed, w)`, so waves are independent but the whole campaign
    /// replays bit-for-bit.
    pub seed: u64,
}

impl FaultSchedule {
    /// A wave of `faults_per_wave` faults every `period` steps, starting
    /// at step 0. Shift the first wave with [`FaultSchedule::offset`].
    ///
    /// # Panics
    ///
    /// Panics if `period == 0` — such a schedule would fire infinitely
    /// often within one step.
    pub fn periodic(period: usize, faults_per_wave: usize, seed: u64) -> Self {
        assert!(
            period > 0,
            "a periodic schedule needs a period of at least 1"
        );
        FaultSchedule {
            arrival: Arrival::Periodic { period, offset: 0 },
            faults_per_wave,
            seed,
        }
    }

    /// Waves at exactly the given steps.
    pub fn bursts<I: IntoIterator<Item = usize>>(
        steps: I,
        faults_per_wave: usize,
        seed: u64,
    ) -> Self {
        let mut steps: Vec<usize> = steps.into_iter().collect();
        steps.sort_unstable();
        steps.dedup();
        FaultSchedule {
            arrival: Arrival::Burst { steps },
            faults_per_wave,
            seed,
        }
    }

    /// Memoryless arrivals with the given per-step probability.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not in `[0, 1]`.
    pub fn poisson(rate: f64, faults_per_wave: usize, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "a per-step arrival probability must be in [0, 1], got {rate}"
        );
        FaultSchedule {
            arrival: Arrival::Poisson { rate },
            faults_per_wave,
            seed,
        }
    }

    /// Delays a periodic schedule's first wave to `offset` (no-op for the
    /// other arrival processes).
    pub fn offset(mut self, offset: usize) -> Self {
        if let Arrival::Periodic { offset: o, .. } = &mut self.arrival {
            *o = offset;
        }
        self
    }

    /// Whether a wave fires at the start of `step` — a pure function of
    /// `(schedule, step)`.
    pub fn fires_at(&self, step: usize) -> bool {
        match &self.arrival {
            Arrival::Periodic { period, offset } => {
                step >= *offset && (step - offset).is_multiple_of(*period)
            }
            Arrival::Burst { steps } => steps.binary_search(&step).is_ok(),
            Arrival::Poisson { rate } => {
                // counter-seeded: mix (seed, step) through SplitMix64, then
                // draw once from the workspace generator
                let mut mix =
                    SplitMix64::new(self.seed ^ (step as u64).wrapping_mul(0xA24B_AED4_963E_E407));
                StdRng::seed_from_u64(mix.next_u64()).gen_bool(*rate)
            }
        }
    }

    /// Every firing step below `max_steps`, ascending.
    pub fn arrivals(&self, max_steps: usize) -> Vec<usize> {
        (0..max_steps).filter(|&t| self.fires_at(t)).collect()
    }

    /// The node-selection seed of wave `wave` (0-based, in firing order).
    pub fn wave_seed(&self, wave: usize) -> u64 {
        let mut mix = SplitMix64::new(self.seed);
        let base = mix.next_u64();
        base ^ (wave as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    /// The fault plan of wave `wave` on an `n`-node graph
    /// (`faults_per_wave` clamped to `n`).
    pub fn wave_plan(&self, wave: usize, n: usize) -> FaultPlan {
        FaultPlan::random(n, self.faults_per_wave.min(n), self.wave_seed(wave))
    }

    /// The wave firing at the start of `step`, if any: `(wave_index, plan)`.
    /// `wave_index` counts firings from step 0, so the plan is stable no
    /// matter how far the driver has already run.
    pub fn wave_at(&self, step: usize, n: usize) -> Option<(usize, FaultPlan)> {
        if !self.fires_at(step) {
            return None;
        }
        let wave = self.arrivals(step).len();
        Some((wave, self.wave_plan(wave, n)))
    }

    /// A compact schedule grammar for labels and artifacts:
    /// `periodic(period=8,offset=0,f=4,seed=7)`,
    /// `burst(steps=3,f=2,seed=1)`, `poisson(rate=0.05,f=4,seed=9)`.
    pub fn describe(&self) -> String {
        let f = self.faults_per_wave;
        let s = self.seed;
        match &self.arrival {
            Arrival::Periodic { period, offset } => {
                format!("periodic(period={period},offset={offset},f={f},seed={s})")
            }
            Arrival::Burst { steps } => format!("burst(steps={},f={f},seed={s})", steps.len()),
            Arrival::Poisson { rate } => format!("poisson(rate={rate},f={f},seed={s})"),
        }
    }
}

/// Per-wave accounting a chaos driver fills in: when the wave fired, what
/// it hit, how fast the system noticed, and how long until it was quiet
/// again. The two latencies are the schedule-level mirror of the paper's
/// detection metrics — MTTD and MTTR in rounds instead of wall clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaveStats {
    /// 0-based wave index, in firing order.
    pub wave: usize,
    /// The step at whose start the wave fired.
    pub step: usize,
    /// Registers the wave corrupted.
    pub faults: usize,
    /// Steps from the wave to the first alarm, if one was raised before
    /// the run (or the next wave) cut measurement off.
    pub detection_latency: Option<usize>,
    /// Steps from the wave until every node accepted again (rounds to
    /// quiescence); `None` if the run (or the next wave) arrived first.
    pub quiescence: Option<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periodic_arrivals_fire_on_the_grid() {
        let s = FaultSchedule::periodic(4, 2, 7).offset(3);
        assert_eq!(s.arrivals(16), vec![3, 7, 11, 15]);
        assert!(s.fires_at(3) && s.fires_at(7));
        assert!(!s.fires_at(0) && !s.fires_at(4));
    }

    #[test]
    fn burst_arrivals_fire_exactly_where_told() {
        let s = FaultSchedule::bursts([9, 2, 9, 5], 1, 0);
        assert_eq!(s.arrivals(20), vec![2, 5, 9]);
    }

    #[test]
    fn poisson_arrivals_are_deterministic_and_plausible() {
        let s = FaultSchedule::poisson(0.25, 1, 11);
        let a = s.arrivals(400);
        assert_eq!(a, s.arrivals(400), "same seed, same arrivals");
        // ~100 expected; loose envelope to stay robust across generators
        assert!(a.len() > 40 && a.len() < 200, "got {} arrivals", a.len());
        let other = FaultSchedule::poisson(0.25, 1, 12).arrivals(400);
        assert_ne!(a, other, "the seed must matter");
    }

    #[test]
    fn zero_and_one_rates_are_degenerate_but_valid() {
        assert!(FaultSchedule::poisson(0.0, 1, 3).arrivals(50).is_empty());
        assert_eq!(FaultSchedule::poisson(1.0, 1, 3).arrivals(5).len(), 5);
    }

    #[test]
    #[should_panic(expected = "period of at least 1")]
    fn zero_period_is_rejected() {
        let _ = FaultSchedule::periodic(0, 1, 0);
    }

    #[test]
    fn waves_are_independent_but_reproducible() {
        let s = FaultSchedule::periodic(5, 3, 42);
        let p0 = s.wave_plan(0, 30);
        let p1 = s.wave_plan(1, 30);
        assert_eq!(p0.len(), 3);
        assert_ne!(p0, p1, "waves draw distinct node sets (w.h.p.)");
        assert_eq!(p0, s.wave_plan(0, 30), "replays bit-for-bit");
    }

    #[test]
    fn wave_at_indexes_in_firing_order() {
        let s = FaultSchedule::bursts([2, 6], 2, 9);
        assert!(s.wave_at(0, 10).is_none());
        let (w0, p0) = s.wave_at(2, 10).expect("fires at 2");
        let (w1, p1) = s.wave_at(6, 10).expect("fires at 6");
        assert_eq!((w0, w1), (0, 1));
        assert_eq!(p0, s.wave_plan(0, 10));
        assert_eq!(p1, s.wave_plan(1, 10));
    }

    #[test]
    fn faults_are_clamped_to_the_graph() {
        let s = FaultSchedule::periodic(2, 100, 5);
        assert_eq!(s.wave_plan(0, 8).len(), 8);
    }

    #[test]
    fn describe_is_a_stable_grammar() {
        assert_eq!(
            FaultSchedule::periodic(8, 4, 7).describe(),
            "periodic(period=8,offset=0,f=4,seed=7)"
        );
        assert_eq!(
            FaultSchedule::bursts([1, 2, 3], 2, 1).describe(),
            "burst(steps=3,f=2,seed=1)"
        );
        assert_eq!(
            FaultSchedule::poisson(0.05, 4, 9).describe(),
            "poisson(rate=0.05,f=4,seed=9)"
        );
    }
}
