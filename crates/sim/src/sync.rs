//! The synchronous executor: lock-step rounds of the paper's "ideal time".
//!
//! In a synchronous round every node simultaneously reads the registers of all
//! its neighbours (as they were at the end of the previous round) and rewrites
//! its own register. One round is one time unit.

use crate::network::Network;
use crate::observer::{RoundObserver, RoundStats};
use crate::program::NodeProgram;
use smst_graph::NodeId;

/// Runs a [`Network`] in lock-step synchronous rounds and keeps a running
/// round counter.
#[derive(Debug)]
pub struct SyncRunner<'p, P: NodeProgram> {
    program: &'p P,
    network: Network<P>,
    /// Double buffer for the next round's registers, allocated once and
    /// swapped with the network's register vector every round (keeps the
    /// hot path free of per-round `Vec` allocations).
    scratch: Vec<P::State>,
    rounds: usize,
    /// Per-round measurement hook; stats are computed only while attached.
    observer: Option<Box<dyn RoundObserver>>,
}

impl<'p, P: NodeProgram> SyncRunner<'p, P> {
    /// Creates a runner over an existing network.
    pub fn new(program: &'p P, network: Network<P>) -> Self {
        let scratch = network.states().to_vec();
        SyncRunner {
            program,
            network,
            scratch,
            rounds: 0,
            observer: None,
        }
    }

    /// Attaches a [`RoundObserver`] invoked after every round (replacing
    /// any previous one). Observation costs one verdict sweep per round;
    /// results never change.
    pub fn set_observer(&mut self, observer: Box<dyn RoundObserver>) {
        self.observer = Some(observer);
    }

    /// Detaches and returns the current observer, if any.
    pub fn take_observer(&mut self) -> Option<Box<dyn RoundObserver>> {
        self.observer.take()
    }

    /// The number of rounds executed so far.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// The network being executed.
    pub fn network(&self) -> &Network<P> {
        &self.network
    }

    /// Mutable access to the network (used for mid-execution fault injection).
    pub fn network_mut(&mut self) -> &mut Network<P> {
        &mut self.network
    }

    /// The program being executed.
    pub fn program(&self) -> &P {
        self.program
    }

    /// Consumes the runner, returning the network.
    pub fn into_network(self) -> Network<P> {
        self.network
    }

    /// Executes exactly one synchronous round.
    pub fn step_round(&mut self) {
        // smst-lint: allow(clock, reason = "observer-gated round timing; wall time never feeds round state")
        let start = self.observer.is_some().then(std::time::Instant::now);
        let n = self.network.node_count();
        for (v, slot) in self.scratch.iter_mut().enumerate().take(n) {
            *slot = self.network.next_state(self.program, NodeId(v));
        }
        self.network.swap_states(&mut self.scratch);
        self.rounds += 1;
        if let Some(mut observer) = self.observer.take() {
            observer.on_round(&RoundStats {
                round: self.rounds - 1,
                alarms: self.network.alarming_nodes(self.program).len(),
                activations: n,
                halo_bytes: 0,
                // the sequential runner's whole step is compute: no
                // dispatch, no barriers, no halo exchange
                dispatch_ns: 0,
                compute_ns: start.map_or(0, |t| t.elapsed().as_nanos() as u64),
                barrier_ns: 0,
                exchange_ns: 0,
            });
            self.observer = Some(observer);
        }
    }

    /// Executes `count` synchronous rounds.
    pub fn run_rounds(&mut self, count: usize) {
        for _ in 0..count {
            self.step_round();
        }
    }

    /// Runs until `stop` returns `true` (checked *after* each round) or until
    /// `max_rounds` additional rounds have elapsed.
    ///
    /// Returns the number of rounds executed by this call if the condition was
    /// met, and `None` on timeout.
    pub fn run_until<F>(&mut self, max_rounds: usize, mut stop: F) -> Option<usize>
    where
        F: FnMut(&Network<P>) -> bool,
    {
        if stop(&self.network) {
            return Some(0);
        }
        for executed in 1..=max_rounds {
            self.step_round();
            if stop(&self.network) {
                return Some(executed);
            }
        }
        None
    }

    /// Runs until some node raises an alarm, for at most `max_rounds` rounds.
    ///
    /// Returns the detection time (in rounds) if an alarm was raised.
    pub fn run_until_alarm(&mut self, max_rounds: usize) -> Option<usize> {
        let program = self.program;
        self.run_until(max_rounds, |net| net.any_alarm(program))
    }

    /// Runs until every node accepts, for at most `max_rounds` rounds.
    pub fn run_until_all_accept(&mut self, max_rounds: usize) -> Option<usize> {
        let program = self.program;
        self.run_until(max_rounds, |net| net.all_accept(program))
    }
}

impl<'p, P> SyncRunner<'p, P>
where
    P: NodeProgram,
    P::State: PartialEq,
{
    /// Runs until a fixpoint (no register changes in a round) is reached, for
    /// at most `max_rounds` rounds. Returns the number of rounds until the
    /// first unchanged round.
    pub fn run_to_fixpoint(&mut self, max_rounds: usize) -> Option<usize> {
        for executed in 1..=max_rounds {
            self.step_round();
            // after the buffer swap, `scratch` holds the previous round
            if self.scratch.as_slice() == self.network.states() {
                return Some(executed);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{NodeContext, Verdict};
    use smst_graph::generators::{path_graph, random_connected_graph};

    /// Propagates the minimum identity; accepts once it holds the global
    /// minimum (which, with identities `0..n`, is 0).
    struct MinId;

    impl NodeProgram for MinId {
        type State = u64;
        fn init(&self, ctx: &NodeContext) -> u64 {
            ctx.id
        }
        fn step(&self, _ctx: &NodeContext, own: &u64, neighbors: &[&u64]) -> u64 {
            neighbors.iter().fold(*own, |acc, &&x| acc.min(x))
        }
        fn verdict(&self, _ctx: &NodeContext, state: &u64) -> Verdict {
            if *state == 0 {
                Verdict::Accept
            } else {
                Verdict::Working
            }
        }
    }

    #[test]
    fn min_id_converges_in_diameter_rounds() {
        let g = path_graph(10, 0);
        let diameter = g.diameter().unwrap();
        let net = Network::new(&MinId, g);
        let mut runner = SyncRunner::new(&MinId, net);
        let t = runner.run_until_all_accept(100).unwrap();
        assert_eq!(t, diameter);
        assert_eq!(runner.rounds(), diameter);
    }

    #[test]
    fn fixpoint_detection() {
        let g = random_connected_graph(12, 20, 1);
        let net = Network::new(&MinId, g);
        let mut runner = SyncRunner::new(&MinId, net);
        let t = runner.run_to_fixpoint(100).unwrap();
        assert!(t <= 13);
        assert!(runner.network().all_accept(&MinId));
    }

    #[test]
    fn run_until_timeout_returns_none() {
        let g = path_graph(6, 0);
        let net = Network::new(&MinId, g);
        let mut runner = SyncRunner::new(&MinId, net);
        assert_eq!(runner.run_until(2, |net| net.all_accept(&MinId)), None);
        assert_eq!(runner.rounds(), 2);
    }

    #[test]
    fn immediate_condition_costs_zero_rounds() {
        let g = path_graph(4, 0);
        let net = Network::new(&MinId, g);
        let mut runner = SyncRunner::new(&MinId, net);
        assert_eq!(runner.run_until(10, |_| true), Some(0));
        assert_eq!(runner.rounds(), 0);
    }

    #[test]
    fn run_rounds_counts() {
        let g = path_graph(4, 0);
        let net = Network::new(&MinId, g);
        let mut runner = SyncRunner::new(&MinId, net);
        runner.run_rounds(5);
        assert_eq!(runner.rounds(), 5);
        let net = runner.into_network();
        assert!(net.all_accept(&MinId));
    }
}
