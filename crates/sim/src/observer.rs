//! Round observers: a per-round/per-time-unit measurement hook shared by
//! every runner in the workspace.
//!
//! A [`RoundObserver`] is invoked by a runner after **every** completed
//! step (synchronous round or asynchronous time unit) with a
//! [`RoundStats`] snapshot: the step index, the number of alarming nodes,
//! the halo bytes the step exchanged (sharded halo mode only) and the
//! wall-clock dispatch latency. This is the single instrumentation surface
//! the `smst-engine` runners, the sequential reference runners and the
//! bench harness share — per-round accounting of the kind KMW-style
//! lower-bound experiments need plugs in here once, not per runner.
//!
//! # Determinism
//!
//! Everything in [`RoundStats`] except `dispatch_ns` is a pure function of
//! the execution semantics: `round`, `alarms` and `activations` are
//! identical across thread counts, layouts and pinning (the engine's
//! determinism contract), and `halo_bytes` is a pure function of the
//! shard geometry. `dispatch_ns` is wall-clock and varies run to run.
//!
//! # Cost
//!
//! Runners compute [`RoundStats`] only while an observer is attached; an
//! attached observer costs one verdict sweep (`O(n)`) per step. The
//! sharded runners also drop from chunked multi-round dispatch to
//! round-granular dispatch while observed, so every round boundary is
//! visible — results never change, only wall-clock.

use std::sync::{Arc, Mutex};

/// What one completed step (round / time unit) looked like.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundStats {
    /// Index of the completed step (the first step a runner executes
    /// reports `round == 0`).
    pub round: usize,
    /// Number of nodes raising an alarm after the step.
    pub alarms: usize,
    /// Activations the step executed (node count for a synchronous round;
    /// the daemon's schedule length for an asynchronous time unit).
    pub activations: usize,
    /// Register bytes pulled across shard boundaries by the step's halo
    /// exchange (0 outside the sharded halo-exchange mode).
    pub halo_bytes: u64,
    /// Wall-clock nanoseconds the step's dispatch took. **Not**
    /// deterministic — never compare it across runs.
    pub dispatch_ns: u64,
}

impl RoundStats {
    /// The deterministic projection of the stats — every field that the
    /// determinism contract covers (everything except `dispatch_ns`).
    /// Equality of these tuples across thread counts / layouts / pinning
    /// is what the observer property tests pin.
    pub fn deterministic(&self) -> (usize, usize, usize, u64) {
        (self.round, self.alarms, self.activations, self.halo_bytes)
    }
}

/// A per-step measurement hook. Implementations must be cheap relative to
/// a step (they run on the dispatching thread, inside the step loop).
pub trait RoundObserver: std::fmt::Debug + Send {
    /// Called once after every completed round / time unit.
    fn on_round(&mut self, stats: &RoundStats);
}

/// A [`RoundObserver`] that records every [`RoundStats`] into shared
/// storage. Cloning is shallow: keep one clone, hand the other to
/// [`set_observer`](crate::SyncRunner::set_observer), and read the
/// recording back through the kept clone after the run.
#[derive(Debug, Clone, Default)]
pub struct RecordingObserver {
    rounds: Arc<Mutex<Vec<RoundStats>>>,
}

impl RecordingObserver {
    /// An empty recording.
    pub fn new() -> Self {
        Self::default()
    }

    /// Everything recorded so far (a snapshot clone).
    pub fn stats(&self) -> Vec<RoundStats> {
        self.rounds.lock().expect("observer lock poisoned").clone()
    }

    /// Number of steps observed.
    pub fn rounds_observed(&self) -> usize {
        self.rounds.lock().expect("observer lock poisoned").len()
    }

    /// Total halo bytes exchanged across all observed steps.
    pub fn total_halo_bytes(&self) -> u64 {
        self.stats().iter().map(|s| s.halo_bytes).sum()
    }

    /// Total activations across all observed steps.
    pub fn total_activations(&self) -> usize {
        self.stats().iter().map(|s| s.activations).sum()
    }

    /// Mean dispatch latency in nanoseconds (0.0 when nothing was
    /// observed). Wall-clock — indicative only.
    pub fn mean_dispatch_ns(&self) -> f64 {
        let stats = self.stats();
        if stats.is_empty() {
            return 0.0;
        }
        stats.iter().map(|s| s.dispatch_ns as f64).sum::<f64>() / stats.len() as f64
    }

    /// The deterministic projections of every recorded step, in order —
    /// the sequence the cross-thread-count determinism tests compare.
    pub fn deterministic_trace(&self) -> Vec<(usize, usize, usize, u64)> {
        self.stats().iter().map(RoundStats::deterministic).collect()
    }
}

impl RoundObserver for RecordingObserver {
    fn on_round(&mut self, stats: &RoundStats) {
        self.rounds
            .lock()
            .expect("observer lock poisoned")
            .push(stats.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stat(round: usize) -> RoundStats {
        RoundStats {
            round,
            alarms: round % 2,
            activations: 10,
            halo_bytes: 8,
            dispatch_ns: 123,
        }
    }

    #[test]
    fn recording_observer_accumulates_through_clones() {
        let recording = RecordingObserver::new();
        let mut handle = recording.clone();
        handle.on_round(&stat(0));
        handle.on_round(&stat(1));
        assert_eq!(recording.rounds_observed(), 2);
        assert_eq!(recording.stats()[1], stat(1));
        assert_eq!(recording.total_halo_bytes(), 16);
        assert_eq!(recording.total_activations(), 20);
        assert!((recording.mean_dispatch_ns() - 123.0).abs() < 1e-9);
        assert_eq!(
            recording.deterministic_trace(),
            vec![(0, 0, 10, 8), (1, 1, 10, 8)]
        );
    }

    #[test]
    fn deterministic_projection_drops_wall_clock() {
        let mut a = stat(3);
        let mut b = stat(3);
        a.dispatch_ns = 1;
        b.dispatch_ns = 999_999;
        assert_ne!(a, b);
        assert_eq!(a.deterministic(), b.deterministic());
    }

    #[test]
    fn empty_recording_reports_zeroes() {
        let recording = RecordingObserver::new();
        assert_eq!(recording.rounds_observed(), 0);
        assert_eq!(recording.mean_dispatch_ns(), 0.0);
        assert!(recording.deterministic_trace().is_empty());
    }
}
