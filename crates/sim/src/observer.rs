//! Round observers: a per-round/per-time-unit measurement hook shared by
//! every runner in the workspace.
//!
//! A [`RoundObserver`] is invoked by a runner after **every** completed
//! step (synchronous round or asynchronous time unit) with a
//! [`RoundStats`] snapshot: the step index, the number of alarming nodes,
//! the halo bytes the step exchanged (sharded halo mode only) and a
//! wall-clock phase breakdown of where the step spent its time. This is
//! the single instrumentation surface the `smst-engine` runners, the
//! sequential reference runners and the bench harness share — per-round
//! accounting of the kind KMW-style lower-bound experiments need plugs in
//! here once, not per runner.
//!
//! # Determinism
//!
//! Everything in [`RoundStats`] except the `*_ns` timing fields is a pure
//! function of the execution semantics: `round`, `alarms` and
//! `activations` are identical across thread counts, layouts and pinning
//! (the engine's determinism contract), and `halo_bytes` is a pure
//! function of the shard geometry. The four timing fields (`dispatch_ns`,
//! `compute_ns`, `barrier_ns`, `exchange_ns`) are wall-clock and vary run
//! to run; [`RoundStats::deterministic`] projects them away.
//!
//! # Phase accounting
//!
//! The timing fields partition one step's wall-clock exactly:
//! [`RoundStats::total_phase_ns`] (their sum) is the measured duration of
//! the step, `compute_ns`/`barrier_ns`/`exchange_ns` are the time the
//! instrumented part spent computing next states, waiting on the round
//! barrier, and pulling halo copies, and `dispatch_ns` is the residual —
//! dispatch/wake-up, gather/scatter and other per-step overhead outside
//! the three named phases. Sequential runners report the whole step as
//! `compute_ns`; runners without barriers or halo exchange report those
//! phases as 0.
//!
//! # Cost
//!
//! Runners compute [`RoundStats`] only while an observer is attached; an
//! attached observer costs one verdict sweep (`O(n)`) per step. The
//! sharded runners also drop from chunked multi-round dispatch to
//! round-granular dispatch while observed, so every round boundary is
//! visible — results never change, only wall-clock.

use std::sync::{Arc, Mutex};

/// What one completed step (round / time unit) looked like.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RoundStats {
    /// Index of the completed step (the first step a runner executes
    /// reports `round == 0`).
    pub round: usize,
    /// Number of nodes raising an alarm after the step.
    pub alarms: usize,
    /// Activations the step executed (node count for a synchronous round;
    /// the daemon's schedule length for an asynchronous time unit).
    pub activations: usize,
    /// Register bytes pulled across shard boundaries by the step's halo
    /// exchange (0 outside the sharded halo-exchange mode).
    pub halo_bytes: u64,
    /// Wall-clock nanoseconds of per-step overhead outside the compute /
    /// barrier / exchange phases: dispatch and wake-up, arena gather and
    /// scatter, daemon scheduling. Defined as the residual of the step's
    /// measured duration after the three named phases, so the four timing
    /// fields always sum to the step total. **Not** deterministic — never
    /// compare it across runs.
    pub dispatch_ns: u64,
    /// Wall-clock nanoseconds spent computing next states (the whole step
    /// for sequential runners). **Not** deterministic.
    pub compute_ns: u64,
    /// Wall-clock nanoseconds spent waiting on round barriers (0 for
    /// sequential and single-shard execution). **Not** deterministic.
    pub barrier_ns: u64,
    /// Wall-clock nanoseconds spent pulling halo copies (0 outside the
    /// sharded halo-exchange mode). **Not** deterministic.
    pub exchange_ns: u64,
}

impl RoundStats {
    /// The deterministic projection of the stats — every field that the
    /// determinism contract covers (everything except the `*_ns` timing
    /// fields). Equality of these tuples across thread counts / layouts /
    /// pinning is what the observer property tests pin.
    pub fn deterministic(&self) -> (usize, usize, usize, u64) {
        (self.round, self.alarms, self.activations, self.halo_bytes)
    }

    /// The step's total measured wall-clock: the sum of the four phase
    /// fields (`dispatch_ns` is the residual by construction, so this is
    /// the duration the runner measured around the step).
    pub fn total_phase_ns(&self) -> u64 {
        self.dispatch_ns + self.compute_ns + self.barrier_ns + self.exchange_ns
    }
}

/// A per-step measurement hook. Implementations must be cheap relative to
/// a step (they run on the dispatching thread, inside the step loop).
pub trait RoundObserver: std::fmt::Debug + Send {
    /// Called once after every completed round / time unit.
    fn on_round(&mut self, stats: &RoundStats);
}

/// A [`RoundObserver`] that records every [`RoundStats`] into shared
/// storage. Cloning is shallow: keep one clone, hand the other to
/// [`set_observer`](crate::SyncRunner::set_observer), and read the
/// recording back through the kept clone after the run.
#[derive(Debug, Clone, Default)]
pub struct RecordingObserver {
    rounds: Arc<Mutex<Vec<RoundStats>>>,
}

impl RecordingObserver {
    /// An empty recording.
    pub fn new() -> Self {
        Self::default()
    }

    /// Everything recorded so far (a snapshot clone).
    pub fn stats(&self) -> Vec<RoundStats> {
        self.rounds.lock().expect("observer lock poisoned").clone()
    }

    /// Number of steps observed.
    pub fn rounds_observed(&self) -> usize {
        self.rounds.lock().expect("observer lock poisoned").len()
    }

    /// Total halo bytes exchanged across all observed steps.
    pub fn total_halo_bytes(&self) -> u64 {
        self.stats().iter().map(|s| s.halo_bytes).sum()
    }

    /// Total activations across all observed steps.
    pub fn total_activations(&self) -> usize {
        self.stats().iter().map(|s| s.activations).sum()
    }

    /// Mean of one per-step projection over everything recorded, guarded
    /// to `0.0` when nothing was observed (never `NaN`). The shared guard
    /// behind every `mean_*` accessor.
    fn mean_of(&self, f: impl Fn(&RoundStats) -> u64) -> f64 {
        let stats = self.stats();
        if stats.is_empty() {
            return 0.0;
        }
        stats.iter().map(|s| f(s) as f64).sum::<f64>() / stats.len() as f64
    }

    /// Mean dispatch-residual latency in nanoseconds (0.0 when nothing
    /// was observed). Wall-clock — indicative only.
    pub fn mean_dispatch_ns(&self) -> f64 {
        self.mean_of(|s| s.dispatch_ns)
    }

    /// Mean total step latency in nanoseconds — the mean of
    /// [`RoundStats::total_phase_ns`] (0.0 when nothing was observed).
    /// Wall-clock — indicative only.
    pub fn mean_round_ns(&self) -> f64 {
        self.mean_of(RoundStats::total_phase_ns)
    }

    /// Mean compute-phase latency in nanoseconds (0.0 when nothing was
    /// observed). Wall-clock — indicative only.
    pub fn mean_compute_ns(&self) -> f64 {
        self.mean_of(|s| s.compute_ns)
    }

    /// The deterministic projections of every recorded step, in order —
    /// the sequence the cross-thread-count determinism tests compare.
    pub fn deterministic_trace(&self) -> Vec<(usize, usize, usize, u64)> {
        self.stats().iter().map(RoundStats::deterministic).collect()
    }
}

impl RoundObserver for RecordingObserver {
    fn on_round(&mut self, stats: &RoundStats) {
        self.rounds
            .lock()
            .expect("observer lock poisoned")
            .push(stats.clone());
    }
}

/// A [`RoundObserver`] that fans every step out to N inner observers, in
/// insertion order — so telemetry sinks *compose* with a
/// [`RecordingObserver`] (or anything else) instead of replacing it.
///
/// ```
/// use smst_sim::observer::{RecordingObserver, RoundObserver, RoundStats, TeeObserver};
///
/// let recording = RecordingObserver::new();
/// let mut tee = TeeObserver::new()
///     .with(Box::new(recording.clone()))
///     .with(Box::new(RecordingObserver::new()));
/// tee.on_round(&RoundStats::default());
/// assert_eq!(recording.rounds_observed(), 1);
/// ```
#[derive(Debug, Default)]
pub struct TeeObserver {
    sinks: Vec<Box<dyn RoundObserver>>,
}

impl TeeObserver {
    /// An empty tee (observes to nobody until sinks are added).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style [`push`](Self::push).
    pub fn with(mut self, sink: Box<dyn RoundObserver>) -> Self {
        self.push(sink);
        self
    }

    /// Adds a sink; every subsequent step fans out to it after the sinks
    /// already present.
    pub fn push(&mut self, sink: Box<dyn RoundObserver>) {
        self.sinks.push(sink);
    }

    /// Number of sinks attached.
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// Whether no sinks are attached.
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }

    /// Consumes the tee, returning the sinks (e.g. to recover an owned
    /// telemetry sink after a run).
    pub fn into_sinks(self) -> Vec<Box<dyn RoundObserver>> {
        self.sinks
    }
}

impl RoundObserver for TeeObserver {
    fn on_round(&mut self, stats: &RoundStats) {
        for sink in &mut self.sinks {
            sink.on_round(stats);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stat(round: usize) -> RoundStats {
        RoundStats {
            round,
            alarms: round % 2,
            activations: 10,
            halo_bytes: 8,
            dispatch_ns: 123,
            compute_ns: 400,
            barrier_ns: 70,
            exchange_ns: 7,
        }
    }

    #[test]
    fn recording_observer_accumulates_through_clones() {
        let recording = RecordingObserver::new();
        let mut handle = recording.clone();
        handle.on_round(&stat(0));
        handle.on_round(&stat(1));
        assert_eq!(recording.rounds_observed(), 2);
        assert_eq!(recording.stats()[1], stat(1));
        assert_eq!(recording.total_halo_bytes(), 16);
        assert_eq!(recording.total_activations(), 20);
        assert!((recording.mean_dispatch_ns() - 123.0).abs() < 1e-9);
        assert!((recording.mean_compute_ns() - 400.0).abs() < 1e-9);
        assert!((recording.mean_round_ns() - 600.0).abs() < 1e-9);
        assert_eq!(
            recording.deterministic_trace(),
            vec![(0, 0, 10, 8), (1, 1, 10, 8)]
        );
    }

    #[test]
    fn deterministic_projection_drops_wall_clock() {
        let mut a = stat(3);
        let mut b = stat(3);
        a.dispatch_ns = 1;
        b.dispatch_ns = 999_999;
        b.compute_ns = 5;
        b.barrier_ns = 6;
        b.exchange_ns = 1_000_000;
        assert_ne!(a, b);
        assert_eq!(a.deterministic(), b.deterministic());
    }

    #[test]
    fn phase_fields_partition_the_round_total() {
        let s = stat(0);
        assert_eq!(s.total_phase_ns(), 123 + 400 + 70 + 7);
        assert_eq!(RoundStats::default().total_phase_ns(), 0);
    }

    #[test]
    fn empty_recording_reports_zeroes() {
        let recording = RecordingObserver::new();
        assert_eq!(recording.rounds_observed(), 0);
        // every mean accessor shares the emptiness guard: 0.0, never NaN
        assert_eq!(recording.mean_dispatch_ns(), 0.0);
        assert_eq!(recording.mean_round_ns(), 0.0);
        assert_eq!(recording.mean_compute_ns(), 0.0);
        assert!(recording.deterministic_trace().is_empty());
    }

    #[test]
    fn tee_fans_out_to_every_sink_in_order() {
        let first = RecordingObserver::new();
        let second = RecordingObserver::new();
        let mut tee = TeeObserver::new()
            .with(Box::new(first.clone()))
            .with(Box::new(second.clone()));
        assert_eq!(tee.len(), 2);
        assert!(!tee.is_empty());
        tee.on_round(&stat(0));
        tee.on_round(&stat(1));
        assert_eq!(first.stats(), second.stats());
        assert_eq!(first.rounds_observed(), 2);
        assert_eq!(tee.into_sinks().len(), 2);
    }

    #[test]
    fn empty_tee_is_a_no_op() {
        let mut tee = TeeObserver::new();
        assert!(tee.is_empty());
        tee.on_round(&stat(0));
    }
}
