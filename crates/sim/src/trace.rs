//! A bounded execution trace.
//!
//! Examples and debugging sessions want to see *what happened*: which node
//! detected a fault at which round, when a construction phase ended, when a
//! train completed a cycle. A [`Trace`] is a cheap, bounded, append-only log
//! that algorithm drivers can write such events to.

use smst_graph::NodeId;
use std::fmt;

/// One trace entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// The round / time unit at which the event occurred.
    pub time: usize,
    /// The node concerned, if any.
    pub node: Option<NodeId>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.node {
            Some(v) => write!(f, "[t={:>5}] {}: {}", self.time, v, self.message),
            None => write!(f, "[t={:>5}] {}", self.time, self.message),
        }
    }
}

/// An append-only, capacity-bounded event log.
///
/// Once the capacity is reached further events are counted but dropped, so a
/// long execution can keep a trace enabled without unbounded memory growth.
#[derive(Debug, Clone)]
pub struct Trace {
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: usize,
}

impl Trace {
    /// A trace that keeps at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Trace {
            events: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// A trace that records nothing (capacity 0).
    pub fn disabled() -> Self {
        Self::with_capacity(0)
    }

    /// Records an event.
    pub fn record(&mut self, time: usize, node: Option<NodeId>, message: impl Into<String>) {
        if self.events.len() < self.capacity {
            self.events.push(TraceEvent {
                time,
                node,
                message: message.into(),
            });
        } else {
            self.dropped += 1;
        }
    }

    /// The recorded events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events dropped because the capacity was exceeded.
    pub fn dropped(&self) -> usize {
        self.dropped
    }
}

impl Default for Trace {
    fn default() -> Self {
        Self::with_capacity(4096)
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for event in &self.events {
            writeln!(f, "{event}")?;
        }
        if self.dropped > 0 {
            writeln!(f, "… and {} more events (dropped)", self.dropped)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_until_capacity() {
        let mut t = Trace::with_capacity(2);
        t.record(0, None, "start");
        t.record(1, Some(NodeId(3)), "alarm");
        t.record(2, None, "ignored");
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn disabled_trace_drops_everything() {
        let mut t = Trace::disabled();
        t.record(0, None, "x");
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn display_formats_events() {
        let mut t = Trace::default();
        t.record(5, Some(NodeId(1)), "detected fault");
        t.record(6, None, "reset");
        let s = t.to_string();
        assert!(s.contains("v1"));
        assert!(s.contains("detected fault"));
        assert!(s.contains("reset"));
        assert_eq!(
            TraceEvent {
                time: 1,
                node: None,
                message: "m".into()
            }
            .to_string(),
            "[t=    1] m"
        );
    }
}
