//! Per-node memory-size accounting.
//!
//! The paper's *memory size* measure (§2.4) is the maximum number of bits any
//! single node stores: identity, marker labels, and verifier working memory.
//! Programs report their register size in bits through
//! [`crate::program::NodeProgram::state_bits`]; [`MemoryUsage`] aggregates the
//! per-node values into the statistics the experiments report.

/// Aggregated per-node memory sizes (in bits).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryUsage {
    per_node: Vec<u64>,
}

impl MemoryUsage {
    /// Wraps a vector of per-node bit counts.
    pub fn from_bits(per_node: Vec<u64>) -> Self {
        MemoryUsage { per_node }
    }

    /// Per-node bit counts, indexed by node.
    pub fn per_node(&self) -> &[u64] {
        &self.per_node
    }

    /// The paper's memory-size measure: the maximum over all nodes.
    pub fn max_bits(&self) -> u64 {
        self.per_node.iter().copied().max().unwrap_or(0)
    }

    /// Arithmetic mean of the per-node bit counts.
    pub fn mean_bits(&self) -> f64 {
        if self.per_node.is_empty() {
            return 0.0;
        }
        self.per_node.iter().copied().sum::<u64>() as f64 / self.per_node.len() as f64
    }

    /// Total bits stored across the whole network.
    pub fn total_bits(&self) -> u64 {
        self.per_node.iter().copied().sum()
    }

    /// The ratio `max_bits / log2(n)` — how many "words" of `log n` bits the
    /// heaviest node uses. For the paper's scheme this stays bounded by a
    /// constant as `n` grows; for the `O(log² n)`-bit baselines it grows like
    /// `log n`.
    pub fn words_of_log_n(&self) -> f64 {
        let n = self.per_node.len().max(2);
        self.max_bits() as f64 / (n as f64).log2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates() {
        let m = MemoryUsage::from_bits(vec![10, 20, 30]);
        assert_eq!(m.max_bits(), 30);
        assert_eq!(m.total_bits(), 60);
        assert!((m.mean_bits() - 20.0).abs() < 1e-9);
        assert_eq!(m.per_node(), &[10, 20, 30]);
    }

    #[test]
    fn empty_usage() {
        let m = MemoryUsage::from_bits(vec![]);
        assert_eq!(m.max_bits(), 0);
        assert_eq!(m.total_bits(), 0);
        assert_eq!(m.mean_bits(), 0.0);
    }

    #[test]
    fn words_of_log_n_scales() {
        // 1024 nodes each holding 100 bits: 100 / 10 = 10 words
        let m = MemoryUsage::from_bits(vec![100; 1024]);
        assert!((m.words_of_log_n() - 10.0).abs() < 1e-9);
    }
}
