//! The node-program interface: the state machine every distributed algorithm
//! in the workspace implements.
//!
//! The execution model is the paper's shared-memory model with *ideal time*
//! (§2.1): in one atomic activation a node reads its own register, the
//! registers of **all** its neighbours, and rewrites its own register. The
//! register is the node's entire state — there is no hidden private memory —
//! so transient faults (arbitrary corruption of registers) model the paper's
//! adversary exactly, and the memory size of the algorithm is the size of the
//! register.

use smst_graph::weight::Weight;
use smst_graph::{NodeId, Port, WeightedGraph};

/// The verdict a node exposes after an activation.
///
/// Verifiers output [`Verdict::Reject`] to "raise an alarm" (§2.4);
/// construction algorithms stay at [`Verdict::Working`] until they are done.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// The node currently accepts the configuration.
    Accept,
    /// The node raises an alarm (detects a fault / rejects the proof).
    Reject,
    /// The node is still computing and has no opinion yet.
    Working,
}

/// Static, per-node information available to a program at every activation.
///
/// This mirrors exactly what the paper allows a node to know for free: its
/// own identity, its degree, and for every port the weight of the incident
/// edge. Neighbour identities are *not* listed here — a node learns them only
/// by reading its neighbours' registers.
#[derive(Debug, Clone)]
pub struct NodeContext {
    /// The dense simulator index of the node.
    pub node: NodeId,
    /// The node's unique identity `ID(v)` (an `O(log n)`-bit value).
    pub id: u64,
    /// The node's degree (number of ports).
    pub degree: usize,
    /// `edge_weight[p]` is the weight of the edge behind port `p`.
    pub edge_weights: Vec<Weight>,
}

impl NodeContext {
    /// Builds the context of node `v` in graph `g`.
    pub fn for_node(g: &WeightedGraph, v: NodeId) -> Self {
        let edge_weights = g
            .incident_edges(v)
            .iter()
            .map(|&e| g.weight(e))
            .collect::<Vec<_>>();
        NodeContext {
            node: v,
            id: g.id(v),
            degree: g.degree(v),
            edge_weights,
        }
    }

    /// The weight of the edge behind a port.
    ///
    /// # Panics
    ///
    /// Panics if the port is out of range.
    pub fn weight_at(&self, port: Port) -> Weight {
        self.edge_weights[port.index()]
    }

    /// Iterator over all ports of the node.
    pub fn ports(&self) -> impl Iterator<Item = Port> {
        (0..self.degree).map(Port)
    }
}

/// A distributed algorithm, described as the state machine run by every node.
///
/// Implementations must be deterministic functions of the read registers so
/// that executions are reproducible; randomized algorithms should carry their
/// randomness explicitly inside the state.
pub trait NodeProgram {
    /// The register (full state) of a node.
    type State: Clone + std::fmt::Debug;

    /// The initial register of a node when the algorithm starts from a clean
    /// configuration. Self-stabilizing programs must also behave correctly
    /// when started from *any* register contents (see [`crate::faults`]).
    fn init(&self, ctx: &NodeContext) -> Self::State;

    /// One atomic activation: compute the node's next register from its own
    /// register and the registers of its neighbours (indexed by port).
    fn step(&self, ctx: &NodeContext, own: &Self::State, neighbors: &[&Self::State])
        -> Self::State;

    /// The verdict the node exposes in a given register.
    fn verdict(&self, _ctx: &NodeContext, _state: &Self::State) -> Verdict {
        Verdict::Working
    }

    /// The number of memory bits a faithful encoding of this register uses.
    ///
    /// This is the quantity the paper's *memory size* measure counts; the
    /// default of 0 is only suitable for throwaway test programs.
    fn state_bits(&self, _ctx: &NodeContext, _state: &Self::State) -> u64 {
        0
    }

    /// A short label used by execution traces.
    fn name(&self) -> &str {
        "unnamed-program"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smst_graph::generators::star_graph;

    #[test]
    fn context_exposes_degree_and_weights() {
        let g = star_graph(4, 1);
        let centre = NodeContext::for_node(&g, NodeId(0));
        assert_eq!(centre.degree, 3);
        assert_eq!(centre.edge_weights.len(), 3);
        assert_eq!(centre.ports().count(), 3);
        let leaf = NodeContext::for_node(&g, NodeId(2));
        assert_eq!(leaf.degree, 1);
        assert_eq!(
            leaf.weight_at(Port(0)),
            g.weight(g.incident_edges(NodeId(2))[0])
        );
    }

    #[test]
    fn verdict_equality() {
        assert_eq!(Verdict::Accept, Verdict::Accept);
        assert_ne!(Verdict::Accept, Verdict::Reject);
    }
}
