//! # smst-rng
//!
//! Small, dependency-free, deterministic pseudo-random number generators for
//! the workspace. Every simulation in this repository must be bit-for-bit
//! reproducible from a `u64` seed — across machines, thread counts and
//! releases — so we pin the generator algorithms here instead of relying on
//! an external crate whose stream may change between versions:
//!
//! * [`SplitMix64`] — the Vigna/Steele splittable generator; 64 bits of
//!   state, one multiply-xorshift per output. Used for seed expansion and
//!   wherever a tiny, fast stream is enough (daemon schedules, shard seeds).
//! * [`Pcg64`] — PCG-XSL-RR 128/64 (O'Neill); 128 bits of state, the
//!   workspace's general-purpose generator ([`StdRng`] is an alias).
//!
//! The sampling surface mirrors the parts of the `rand` crate the workspace
//! uses ([`Rng::gen_range`], [`Rng::gen_bool`], [`SliceRandom::shuffle`],
//! [`SeedableRng::seed_from_u64`]) so algorithm code reads identically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The workspace's default generator ([`Pcg64`]).
pub type StdRng = Pcg64;

/// A generator constructible from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministically expanded to
    /// the full state size).
    fn seed_from_u64(seed: u64) -> Self;
}

/// The minimal generator interface: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// SplitMix64: 64-bit state, full period 2⁶⁴, passes BigCrush.
///
/// The standard seed-expansion generator (Vigna's `splitmix64.c`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the generator with the given state.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(seed: u64) -> Self {
        SplitMix64::new(seed)
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// PCG-XSL-RR 128/64: 128-bit LCG state, xorshift-low + random rotate output.
///
/// The workspace's general-purpose generator; seeded from a `u64` via
/// [`SplitMix64`] expansion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pcg64 {
    state: u128,
    increment: u128,
}

const PCG_MULTIPLIER: u128 = 0x2360_ED05_1FC6_5DA4_4385_DF64_9FCC_F645;

impl Pcg64 {
    /// Creates the generator from full 128-bit state and stream parameters.
    pub fn new(state: u128, stream: u128) -> Self {
        let mut rng = Pcg64 {
            state: 0,
            increment: (stream << 1) | 1,
        };
        rng.state = rng.increment.wrapping_add(state);
        rng.next_u64();
        rng
    }
}

impl SeedableRng for Pcg64 {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let lo = sm.next_u64() as u128;
        let hi = sm.next_u64() as u128;
        let s_lo = sm.next_u64() as u128;
        let s_hi = sm.next_u64() as u128;
        Pcg64::new((hi << 64) | lo, (s_hi << 64) | s_lo)
    }
}

impl RngCore for Pcg64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(PCG_MULTIPLIER)
            .wrapping_add(self.increment);
        let xored = ((self.state >> 64) as u64) ^ (self.state as u64);
        let rot = (self.state >> 122) as u32;
        xored.rotate_right(rot)
    }
}

/// A type that can be sampled uniformly from the full `u64` stream
/// (the subset of `rand`'s `Standard` distribution the workspace needs).
pub trait Standard: Sized {
    /// Draws one uniformly random value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range that supports uniform sampling (`gen_range`'s argument).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Multiply-shift bounded sampling (Lemire); bias is < 2⁻⁶⁴ per draw, far
/// below anything a simulation of this size can observe.
fn bounded<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    (((rng.next_u64() as u128) * (bound as u128)) >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let width = (self.end - self.start) as u64;
                self.start + bounded(rng, width) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let width = (hi - lo) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + bounded(rng, width + 1) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// A uniform value from a range, e.g. `rng.gen_range(0..n)`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// A uniformly random value of a [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        // 53 uniform mantissa bits, the standard [0, 1) construction
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// In-place slice operations driven by a generator.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Fisher–Yates shuffle.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` if the slice is empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = bounded(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[bounded(rng, self.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // first outputs of splitmix64 with seed 1234567
        let mut rng = SplitMix64::new(1234567);
        let first: Vec<u64> = (0..3).map(|_| rng.next_u64()).collect();
        let mut rng2 = SplitMix64::seed_from_u64(1234567);
        let again: Vec<u64> = (0..3).map(|_| rng2.next_u64()).collect();
        assert_eq!(first, again);
        assert_ne!(first[0], first[1]);
    }

    #[test]
    fn pcg_is_deterministic_per_seed_and_streams_differ() {
        let a: Vec<u64> = {
            let mut r = Pcg64::seed_from_u64(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Pcg64::seed_from_u64(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Pcg64::seed_from_u64(43);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u64 = rng.gen_range(5..=5);
            assert_eq!(y, 5);
            let z: u8 = rng.gen_range(0..=255);
            let _ = z;
        }
    }

    #[test]
    fn gen_range_covers_every_value() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 10 values should appear");
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation_and_deterministic() {
        let mut a: Vec<usize> = (0..50).collect();
        let mut b: Vec<usize> = (0..50).collect();
        a.shuffle(&mut StdRng::seed_from_u64(3));
        b.shuffle(&mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            a, sorted,
            "a 50-element shuffle is virtually never identity"
        );
    }

    #[test]
    fn choose_returns_elements() {
        let mut rng = StdRng::seed_from_u64(5);
        let xs = [10, 20, 30];
        for _ in 0..20 {
            assert!(xs.contains(xs.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn standard_samples_all_widths() {
        let mut rng = StdRng::seed_from_u64(8);
        let _: u8 = rng.gen();
        let _: u16 = rng.gen();
        let _: u32 = rng.gen();
        let _: u64 = rng.gen();
        let _: usize = rng.gen();
        let _: bool = rng.gen();
    }
}
