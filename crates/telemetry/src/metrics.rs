//! A registry of named atomic counters and fixed-bucket log-scale
//! histograms.
//!
//! Design constraints (from the engine's hot path):
//!
//! * **no locks on the hot path** — [`Counter::add`] and
//!   [`Histogram::record`] are one or three relaxed atomic RMWs; the
//!   registry's `Mutex` is taken only at registration
//!   ([`Metrics::counter`] / [`Metrics::histogram`]) and snapshot time;
//! * **cheap aggregation** — a [`Histogram`] is 65 fixed power-of-two
//!   buckets (bucket `i` counts values of bit length `i`; bucket 0 counts
//!   zeros) plus a running count and sum, so recording never allocates
//!   and a snapshot is a bounded copy;
//! * **disabled means free** — both handle types have a no-op state
//!   (`None` inside) whose operations compile to a branch on a constant;
//!   [`Telemetry::disabled`](crate::Telemetry::disabled) hands those out.
//!
//! [`Metrics::snapshot`] returns a plain-data [`MetricsSnapshot`];
//! [`MetricsSnapshot::diff`] subtracts an earlier snapshot, which is how
//! callers meter a region of a run without resetting anything.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of histogram buckets: bucket `0` holds zeros, bucket `i >= 1`
/// holds values of bit length `i` (the range `2^(i-1) ..= 2^i - 1`), up
/// to bucket 64 for values with the top bit set.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// The bucket a value lands in: its bit length.
fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `i` (`0` for bucket 0, `2^i - 1`
/// otherwise, saturating at `u64::MAX`).
pub fn bucket_upper_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        1..=63 => (1u64 << i) - 1,
        _ => u64::MAX,
    }
}

/// The shared cells behind a registered histogram.
#[derive(Debug)]
struct HistogramCells {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistogramCells {
    fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let v = b.load(Ordering::Relaxed);
                (v != 0).then_some((i, v))
            })
            .collect();
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// A handle to a named monotone counter (or a no-op). Clones share the
/// same cell; all operations are relaxed atomics.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// A disabled counter: every operation is free, [`get`](Self::get)
    /// reads 0.
    pub fn noop() -> Self {
        Self(None)
    }

    /// Whether this handle is the disabled no-op.
    pub fn is_noop(&self) -> bool {
        self.0.is_none()
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds 1.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value (0 for the no-op).
    pub fn get(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// A handle to a named log-scale histogram (or a no-op). Clones share the
/// same cells; recording is three relaxed atomic RMWs.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Option<Arc<HistogramCells>>);

impl Histogram {
    /// A disabled histogram: recording is free, [`count`](Self::count)
    /// reads 0.
    pub fn noop() -> Self {
        Self(None)
    }

    /// Whether this handle is the disabled no-op.
    pub fn is_noop(&self) -> bool {
        self.0.is_none()
    }

    /// Records one value.
    pub fn record(&self, value: u64) {
        if let Some(cells) = &self.0 {
            cells.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
            cells.count.fetch_add(1, Ordering::Relaxed);
            cells.sum.fetch_add(value, Ordering::Relaxed);
        }
    }

    /// Number of values recorded (0 for the no-op).
    pub fn count(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |cells| cells.count.load(Ordering::Relaxed))
    }
}

/// The registry: name → shared cells. Registration interns the name
/// (same name → same cells, so every holder of a handle updates one
/// shared value); handles escape the lock, updates never take it.
#[derive(Debug, Default)]
pub struct Metrics {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramCells>>>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or looks up) the counter `name` and returns a live
    /// handle to it.
    pub fn counter(&self, name: &str) -> Counter {
        let mut counters = self.counters.lock().expect("metrics registry poisoned");
        let cell = counters
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)));
        Counter(Some(Arc::clone(cell)))
    }

    /// Registers (or looks up) the histogram `name` and returns a live
    /// handle to it.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut histograms = self.histograms.lock().expect("metrics registry poisoned");
        let cells = histograms
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(HistogramCells::new()));
        Histogram(Some(Arc::clone(cells)))
    }

    /// A plain-data snapshot of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(name, cell)| (name.clone(), cell.load(Ordering::Relaxed)))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(name, cells)| (name.clone(), cells.snapshot()))
            .collect();
        MetricsSnapshot {
            counters,
            histograms,
        }
    }
}

/// Plain-data copy of one histogram at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Sparse non-empty buckets, ascending `(bucket index, count)`; see
    /// [`bucket_upper_bound`] for the value range a bucket covers.
    pub buckets: Vec<(usize, u64)>,
}

impl HistogramSnapshot {
    /// Mean recorded value, guarded to `0.0` when empty (never `NaN`).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Inclusive upper bound of the highest non-empty bucket (0 when
    /// empty) — a cheap "order of magnitude of the max".
    pub fn max_bound(&self) -> u64 {
        self.buckets
            .last()
            .map_or(0, |&(i, _)| bucket_upper_bound(i))
    }

    /// This snapshot minus an `earlier` one of the same histogram
    /// (per-bucket saturating subtraction).
    fn diff(&self, earlier: &Self) -> Self {
        let before: BTreeMap<usize, u64> = earlier.buckets.iter().copied().collect();
        let buckets = self
            .buckets
            .iter()
            .filter_map(|&(i, v)| {
                let d = v.saturating_sub(before.get(&i).copied().unwrap_or(0));
                (d != 0).then_some((i, d))
            })
            .collect();
        Self {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            buckets,
        }
    }
}

/// Plain-data copy of a whole [`Metrics`] registry at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Counter name → value.
    pub counters: BTreeMap<String, u64>,
    /// Histogram name → snapshot.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Whether nothing was registered when the snapshot was taken.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// This snapshot minus an `earlier` one from the same registry: what
    /// happened in between (saturating, so metrics registered after the
    /// earlier snapshot diff against zero).
    pub fn diff(&self, earlier: &Self) -> Self {
        let counters = self
            .counters
            .iter()
            .map(|(name, &v)| {
                let before = earlier.counters.get(name).copied().unwrap_or(0);
                (name.clone(), v.saturating_sub(before))
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(name, h)| {
                let diffed = match earlier.histograms.get(name) {
                    Some(before) => h.diff(before),
                    None => h.clone(),
                };
                (name.clone(), diffed)
            })
            .collect();
        Self {
            counters,
            histograms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_shares_one_cell() {
        let metrics = Metrics::new();
        let a = metrics.counter("x");
        let b = metrics.counter("x");
        a.add(2);
        b.incr();
        assert_eq!(a.get(), 3);
        assert_eq!(metrics.snapshot().counters["x"], 3);
    }

    #[test]
    fn noop_handles_are_free_and_silent() {
        let c = Counter::noop();
        c.add(5);
        assert!(c.is_noop());
        assert_eq!(c.get(), 0);
        let h = Histogram::noop();
        h.record(5);
        assert!(h.is_noop());
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(3), 7);
        assert_eq!(bucket_upper_bound(64), u64::MAX);

        let metrics = Metrics::new();
        let h = metrics.histogram("lat");
        for v in [0, 1, 2, 3, 700] {
            h.record(v);
        }
        let snap = &metrics.snapshot().histograms["lat"];
        assert_eq!(snap.count, 5);
        assert_eq!(snap.sum, 706);
        assert_eq!(snap.buckets, vec![(0, 1), (1, 1), (2, 2), (10, 1)]);
        assert!((snap.mean() - 141.2).abs() < 1e-9);
        assert_eq!(snap.max_bound(), 1023);
    }

    #[test]
    fn empty_histogram_mean_is_zero_not_nan() {
        assert_eq!(HistogramSnapshot::default().mean(), 0.0);
        assert_eq!(HistogramSnapshot::default().max_bound(), 0);
    }

    #[test]
    fn snapshot_diff_meters_a_region() {
        let metrics = Metrics::new();
        let c = metrics.counter("rounds");
        let h = metrics.histogram("ns");
        c.add(10);
        h.record(3);
        let before = metrics.snapshot();
        c.add(5);
        h.record(3);
        h.record(900);
        let after = metrics.snapshot();
        let d = after.diff(&before);
        assert_eq!(d.counters["rounds"], 5);
        assert_eq!(d.histograms["ns"].count, 2);
        assert_eq!(d.histograms["ns"].sum, 903);
        assert_eq!(d.histograms["ns"].buckets, vec![(2, 1), (10, 1)]);
        // a self-diff is empty-valued
        let zero = after.diff(&after);
        assert_eq!(zero.counters["rounds"], 0);
        assert_eq!(zero.histograms["ns"].count, 0);
        assert!(zero.histograms["ns"].buckets.is_empty());
    }
}
