//! The per-round accounting artifact: `BENCH_<group>.json` with one
//! record per observed round — the ROADMAP's "promote the `RoundObserver`
//! stream to a first-class `BENCH_rounds.json` artifact".
//!
//! A [`RoundsArtifact`] collects one or more labelled runs (each a
//! recorded `Vec<RoundStats>` plus a replay-correlation label such as a
//! `TrialId` or seed) and writes them with the same group-named,
//! injectable-directory discipline as the bench harness's `BenchGroup`:
//! `write_json_to(dir)` for tests, `write_json()` for `$SMST_BENCH_DIR`,
//! `finish()` to write-and-announce. The `round_latency` bench uses group
//! `"rounds"` (→ literally `BENCH_rounds.json`); other producers suffix
//! the group (`rounds_halo`, `rounds_campaign`) so one CI `BENCH_*.json`
//! glob uploads them all.
//!
//! Artifact schema:
//!
//! ```json
//! {"schema":"smst-rounds-v1","group":"rounds",
//!  "runs":[{"label":"<case>","run":"<replay id>",
//!           "rounds":[{"round":0,"alarms":0,"activations":500,
//!                      "halo_bytes":0,"dispatch_ns":1,"compute_ns":2,
//!                      "barrier_ns":3,"exchange_ns":4}]}]}
//! ```

use crate::json::{json_string, round_fields};
use smst_sim::RoundStats;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// One labelled run inside a [`RoundsArtifact`].
#[derive(Debug, Clone)]
pub struct RoundsRun {
    /// Case label (what was run — mirrors bench case naming).
    pub label: String,
    /// Replay correlation: a `TrialId`, a seed, a config description —
    /// whatever lets a reader reproduce the run the rounds came from.
    pub run: String,
    /// The observed per-round stats, in round order.
    pub stats: Vec<RoundStats>,
}

/// Collects observed round streams and writes `BENCH_<group>.json`.
#[derive(Debug)]
pub struct RoundsArtifact {
    group: String,
    runs: Vec<RoundsRun>,
}

impl RoundsArtifact {
    /// An empty artifact for `group` (written as `BENCH_<group>.json`).
    pub fn new(group: &str) -> Self {
        Self {
            group: group.to_string(),
            runs: Vec::new(),
        }
    }

    /// The artifact's group name.
    pub fn group(&self) -> &str {
        &self.group
    }

    /// Appends one labelled run.
    pub fn push(&mut self, label: &str, run: &str, stats: Vec<RoundStats>) {
        self.runs.push(RoundsRun {
            label: label.to_string(),
            run: run.to_string(),
            stats,
        });
    }

    /// Number of runs collected so far.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// Whether no runs were collected.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// The artifact as a JSON document (see the module docs for the
    /// schema).
    pub fn to_json(&self) -> String {
        let runs: Vec<String> = self
            .runs
            .iter()
            .map(|run| {
                let rounds: Vec<String> = run
                    .stats
                    .iter()
                    .map(|s| format!("{{{}}}", round_fields(s)))
                    .collect();
                format!(
                    "{{\"label\":{},\"run\":{},\"rounds\":[{}]}}",
                    json_string(&run.label),
                    json_string(&run.run),
                    rounds.join(",")
                )
            })
            .collect();
        format!(
            "{{\"schema\":\"smst-rounds-v1\",\"group\":{},\"runs\":[{}]}}\n",
            json_string(&self.group),
            runs.join(",")
        )
    }

    /// Writes `BENCH_<group>.json` into `dir` and returns its path (the
    /// injectable core — tests pass a directory instead of mutating the
    /// process-global `SMST_BENCH_DIR`).
    pub fn write_json_to(&self, dir: &Path) -> io::Result<PathBuf> {
        let path = dir.join(format!("BENCH_{}.json", self.group));
        let mut file = std::fs::File::create(&path)?;
        file.write_all(self.to_json().as_bytes())?;
        Ok(path)
    }

    /// Writes `BENCH_<group>.json` into
    /// [`artifact_dir`](crate::artifact_dir) and returns its path.
    pub fn write_json(&self) -> io::Result<PathBuf> {
        self.write_json_to(&crate::artifact_dir())
    }

    /// Writes the artifact, printing where it went (panics on I/O errors
    /// — an artifact run that silently loses its results is worse than
    /// one that fails).
    pub fn finish(self) -> PathBuf {
        let path = self.write_json().expect("writing the rounds JSON artifact");
        println!("  rounds -> {}", path.display());
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stat(round: usize) -> RoundStats {
        RoundStats {
            round,
            alarms: round,
            activations: 3,
            halo_bytes: 16,
            dispatch_ns: 1,
            compute_ns: 2,
            barrier_ns: 3,
            exchange_ns: 4,
        }
    }

    #[test]
    fn artifact_roundtrip_through_a_directory() {
        let dir = std::env::temp_dir().join("smst_telemetry_rounds_test");
        std::fs::create_dir_all(&dir).unwrap();
        let mut artifact = RoundsArtifact::new("rounds_unit");
        assert!(artifact.is_empty());
        artifact.push("expander/n=500", "seed=7", vec![stat(0), stat(1)]);
        assert_eq!(artifact.len(), 1);
        let path = artifact.write_json_to(&dir).unwrap();
        assert_eq!(
            path.file_name().unwrap().to_string_lossy(),
            "BENCH_rounds_unit.json"
        );
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.starts_with("{\"schema\":\"smst-rounds-v1\",\"group\":\"rounds_unit\""));
        assert!(body.contains("\"label\":\"expander/n=500\""));
        assert!(body.contains("\"run\":\"seed=7\""));
        assert!(body.contains(
            "{\"round\":1,\"alarms\":1,\"activations\":3,\"halo_bytes\":16,\
             \"dispatch_ns\":1,\"compute_ns\":2,\"barrier_ns\":3,\"exchange_ns\":4}"
        ));
    }
}
