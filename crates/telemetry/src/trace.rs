//! Structured per-round JSONL event stream: `TRACE_<name>.jsonl`.
//!
//! One line per observed round, correlatable to a replayable run: every
//! record carries a `run` label (a `TrialId`, a bench case name, a seed —
//! whatever identifies how to reproduce the run) plus the eight
//! [`RoundStats`] fields. Sampling is env-gated: `SMST_TRACE_SAMPLE=k`
//! keeps every `k`-th round (`k = 1` keeps all); unset or `0` disables
//! tracing entirely, which is the default —
//! [`Telemetry::from_env`](crate::Telemetry::from_env) creates a writer
//! only when sampling is on.
//!
//! Record schema (one JSON object per line):
//!
//! ```json
//! {"run":"<label>","round":0,"alarms":0,"activations":500,"halo_bytes":0,
//!  "dispatch_ns":1,"compute_ns":2,"barrier_ns":3,"exchange_ns":4}
//! ```

use crate::json::{json_string, round_fields};
use smst_sim::RoundStats;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// The sampling env var: `SMST_TRACE_SAMPLE=k` records every `k`-th
/// round; unset or `0` disables the trace stream.
pub const TRACE_SAMPLE_ENV: &str = "SMST_TRACE_SAMPLE";

/// The sampling interval `$SMST_TRACE_SAMPLE` requests (0 when unset,
/// unparsable, or explicitly 0 — all meaning "no trace"). An unparsable
/// value additionally warns once per process on stderr — a typo'd
/// `SMST_TRACE_SAMPLE=ten` silently producing no trace cost a debugging
/// session once; it never gets to again.
pub fn trace_sample_from_env() -> u64 {
    match std::env::var(TRACE_SAMPLE_ENV) {
        Ok(raw) => parse_trace_sample(&raw).unwrap_or_else(|| {
            static WARN_ONCE: std::sync::Once = std::sync::Once::new();
            WARN_ONCE.call_once(|| {
                eprintln!(
                    "warning: {TRACE_SAMPLE_ENV}={raw:?} is not an unsigned \
                     integer; tracing stays disabled"
                );
            });
            0
        }),
        Err(_) => 0,
    }
}

/// The parsing rule behind [`trace_sample_from_env`], testable without
/// mutating the process environment: `None` means unparsable (the caller
/// warns), `Some(0)` means explicitly disabled.
pub(crate) fn parse_trace_sample(raw: &str) -> Option<u64> {
    raw.trim().parse().ok()
}

/// A buffered, thread-safe `TRACE_<name>.jsonl` writer. Flushed on drop;
/// the `Mutex` is per-line, never on any runner's compute path (observers
/// run between rounds, on the dispatching thread).
#[derive(Debug)]
pub struct TraceWriter {
    path: PathBuf,
    file: Mutex<BufWriter<File>>,
}

impl TraceWriter {
    /// Creates (truncating) `TRACE_<name>.jsonl` inside `dir`.
    ///
    /// This is the injectable core of [`create`](Self::create): tests
    /// pass a directory instead of mutating the process-global
    /// `SMST_BENCH_DIR`.
    pub fn create_in(dir: &Path, name: &str) -> io::Result<Self> {
        let path = dir.join(format!("TRACE_{name}.jsonl"));
        let file = BufWriter::new(File::create(&path)?);
        Ok(Self {
            path,
            file: Mutex::new(file),
        })
    }

    /// Creates (truncating) `TRACE_<name>.jsonl` in
    /// [`artifact_dir`](crate::artifact_dir) — next to the `BENCH_*.json`
    /// artifacts, so CI uploads them together.
    pub fn create(name: &str) -> io::Result<Self> {
        Self::create_in(&crate::artifact_dir(), name)
    }

    /// Where the stream is being written.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one round record attributed to `run`.
    ///
    /// # Panics
    ///
    /// Panics on I/O errors — a trace that silently loses records is
    /// worse than a run that fails (the bench-artifact philosophy).
    pub fn write_round(&self, run: &str, stats: &RoundStats) {
        let line = format!("{{\"run\":{},{}}}\n", json_string(run), round_fields(stats));
        self.file
            .lock()
            .expect("trace writer poisoned")
            .write_all(line.as_bytes())
            .expect("writing a TRACE_*.jsonl record");
    }

    /// Flushes buffered records to disk.
    pub fn flush(&self) -> io::Result<()> {
        self.file.lock().expect("trace writer poisoned").flush()
    }
}

impl Drop for TraceWriter {
    fn drop(&mut self) {
        // best-effort: drop cannot propagate errors, and the explicit
        // `flush` is there for callers that need the guarantee
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stat(round: usize) -> RoundStats {
        RoundStats {
            round,
            alarms: 1,
            activations: 4,
            halo_bytes: 32,
            dispatch_ns: 9,
            compute_ns: 90,
            barrier_ns: 0,
            exchange_ns: 1,
        }
    }

    #[test]
    fn writes_one_json_object_per_round() {
        let dir = std::env::temp_dir().join("smst_telemetry_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let writer = TraceWriter::create_in(&dir, "unit").unwrap();
        assert_eq!(writer.path().file_name().unwrap(), "TRACE_unit.jsonl");
        writer.write_round("trial-a", &stat(0));
        writer.write_round("trial-a", &stat(1));
        writer.flush().unwrap();
        let body = std::fs::read_to_string(writer.path()).unwrap();
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"run\":\"trial-a\",\"round\":0,"));
        assert!(lines[1].contains("\"round\":1"));
        assert!(lines[1].contains("\"compute_ns\":90"));
        assert!(lines[1].ends_with('}'));
    }

    #[test]
    fn sample_parsing_distinguishes_disabled_from_unparsable() {
        assert_eq!(parse_trace_sample("4"), Some(4));
        assert_eq!(parse_trace_sample(" 7 "), Some(7), "whitespace is noise");
        assert_eq!(parse_trace_sample("0"), Some(0), "explicitly disabled");
        assert_eq!(parse_trace_sample("ten"), None, "a typo is not silence");
        assert_eq!(parse_trace_sample("-3"), None);
        assert_eq!(parse_trace_sample(""), None);
    }
}
