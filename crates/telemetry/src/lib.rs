//! # smst-telemetry
//!
//! Observability for the engine: a lock-free [`Metrics`] registry,
//! span-style per-round phase accounting, a structured JSONL trace
//! stream, and the first-class per-round `BENCH_rounds*.json` artifact —
//! with a disabled mode that costs nothing.
//!
//! The crate sits directly above `smst-sim` (it consumes the
//! [`RoundObserver`] / [`RoundStats`] surface every runner already
//! exposes) and below the bench and adversary crates that emit its
//! artifacts. The engine itself does **not** depend on it: runners
//! produce phase-split [`RoundStats`] natively, and telemetry plugs in as
//! just another observer — composed with recording or custom observers
//! through [`smst_sim::TeeObserver`].
//!
//! ## The one entry point: [`Telemetry`]
//!
//! ```
//! use smst_sim::RoundObserver as _;
//! use smst_telemetry::Telemetry;
//!
//! // disabled: no registry, no observer, no clocks — runners take the
//! // exact unobserved fast path they had before telemetry existed
//! let off = Telemetry::disabled();
//! assert!(off.observer("run").is_none());
//!
//! // enabled: a metrics registry fed by a RoundObserver
//! let tel = Telemetry::enabled();
//! let mut obs = tel.observer("expander/n=500/seed=7").unwrap();
//! obs.on_round(&smst_sim::RoundStats {
//!     round: 0,
//!     alarms: 2,
//!     activations: 500,
//!     halo_bytes: 0,
//!     dispatch_ns: 10,
//!     compute_ns: 80,
//!     barrier_ns: 5,
//!     exchange_ns: 5,
//! });
//! let snap = tel.snapshot();
//! assert_eq!(snap.counters[smst_telemetry::names::ROUNDS_OBSERVED], 1);
//! assert_eq!(snap.counters[smst_telemetry::names::ALARMS_TOTAL], 2);
//! assert_eq!(snap.histograms[smst_telemetry::names::PHASE_ROUND_NS].sum, 100);
//! ```
//!
//! ## Metric names
//!
//! Every [`observer`](Telemetry::observer) feeds the same fixed registry
//! names (see [`names`]): counters `rounds.observed`, `alarms.total`,
//! `activations.total`, `halo.bytes`; histograms `phase.round_ns`,
//! `phase.dispatch_ns`, `phase.compute_ns`, `phase.barrier_ns`,
//! `phase.exchange_ns`. Per-run separation comes from the trace stream
//! (each record carries its `run` label), not from name proliferation.
//!
//! ## Artifacts
//!
//! * [`trace::TraceWriter`] — `TRACE_<name>.jsonl`, one record per
//!   sampled round, env-gated by `SMST_TRACE_SAMPLE`;
//! * [`rounds::RoundsArtifact`] — `BENCH_<group>.json` per-round
//!   accounting, the artifact form of a recorded observer stream;
//! * [`chaos::ChaosArtifact`] — `BENCH_chaos*.json` per-wave accounting
//!   of recurring-fault campaigns (detection latency and
//!   rounds-to-quiescence per wave, schedule grammar per run);
//! * [`flight::FlightRecorder`] — `FLIGHT_<name>.json`, the final
//!   ring-buffer window of rounds dumped when a run dies (barrier
//!   timeout, caught panic).
//!
//! All use the bench-harness conventions (`$SMST_BENCH_DIR`, injectable
//! directories for tests, hand-rolled JSON — the offline workspace has no
//! serde).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod flight;
mod json;
pub mod metrics;
pub mod rounds;
pub mod trace;

pub use chaos::{ChaosArtifact, ChaosRun};
pub use flight::FlightRecorder;
pub use metrics::{
    bucket_upper_bound, Counter, Histogram, HistogramSnapshot, Metrics, MetricsSnapshot,
    HISTOGRAM_BUCKETS,
};
pub use rounds::{RoundsArtifact, RoundsRun};
pub use trace::{trace_sample_from_env, TraceWriter, TRACE_SAMPLE_ENV};

use smst_sim::{RoundObserver, RoundStats};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// The fixed registry names every [`Telemetry::observer`] feeds.
pub mod names {
    /// Counter: rounds / time units observed.
    pub const ROUNDS_OBSERVED: &str = "rounds.observed";
    /// Counter: sum of per-round alarming-node counts.
    pub const ALARMS_TOTAL: &str = "alarms.total";
    /// Counter: total activations executed.
    pub const ACTIVATIONS_TOTAL: &str = "activations.total";
    /// Counter: total halo bytes pulled across shard boundaries.
    pub const HALO_BYTES: &str = "halo.bytes";
    /// Histogram: total per-round wall-clock (the phase sum), ns.
    pub const PHASE_ROUND_NS: &str = "phase.round_ns";
    /// Histogram: per-round dispatch-residual overhead, ns.
    pub const PHASE_DISPATCH_NS: &str = "phase.dispatch_ns";
    /// Histogram: per-round compute phase, ns.
    pub const PHASE_COMPUTE_NS: &str = "phase.compute_ns";
    /// Histogram: per-round barrier-wait phase, ns.
    pub const PHASE_BARRIER_NS: &str = "phase.barrier_ns";
    /// Histogram: per-round halo-exchange phase, ns.
    pub const PHASE_EXCHANGE_NS: &str = "phase.exchange_ns";

    // The chaos-plane names below are fed by campaign drivers (the chaos
    // bins and benches), not by the per-round observer.

    /// Counter: fault waves fired by a chaos schedule.
    pub const CHAOS_WAVES: &str = "chaos.waves";
    /// Counter: registers corrupted by chaos waves.
    pub const CHAOS_FAULTS: &str = "chaos.faults_injected";
    /// Histogram: per-wave detection latency, steps.
    pub const CHAOS_DETECTION_STEPS: &str = "chaos.detection_steps";
    /// Histogram: per-wave rounds-to-quiescence (MTTR), steps.
    pub const CHAOS_QUIESCENCE_STEPS: &str = "chaos.quiescence_steps";
    /// Counter: worker panics the pool caught.
    pub const POOL_WORKER_PANICS: &str = "pool.worker_panics";
    /// Counter: worker threads respawned after a caught panic.
    pub const POOL_WORKER_RESPAWNS: &str = "pool.worker_respawns";
    /// Counter: dispatches ended by the barrier watchdog.
    pub const POOL_BARRIER_TIMEOUTS: &str = "pool.barrier_timeouts";
}

/// Where telemetry artifacts are written: `$SMST_BENCH_DIR` when set,
/// otherwise the current directory — the same convention as the bench
/// harness's `bench_dir`, so `TRACE_*.jsonl` lands next to
/// `BENCH_*.json`.
pub fn artifact_dir() -> PathBuf {
    std::env::var_os("SMST_BENCH_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| Path::new(".").to_path_buf())
}

/// The shared state behind an enabled [`Telemetry`].
#[derive(Debug)]
struct TelemetryInner {
    metrics: Metrics,
    /// `Some` when a trace stream is attached; records are sampled every
    /// `sample`-th round.
    trace: Option<TraceWriter>,
    sample: u64,
}

/// The observability handle: either **disabled** (`None` inside — every
/// operation is a no-op and [`observer`](Telemetry::observer) returns
/// `None`, so runners keep their exact unobserved code path) or
/// **enabled** (a shared [`Metrics`] registry, optionally with a sampled
/// [`TraceWriter`] stream).
///
/// Cloning is shallow: clones share the registry and trace stream, so one
/// `Telemetry` can feed observers for many runs and be snapshotted once.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<TelemetryInner>>,
}

impl Telemetry {
    /// The no-op telemetry: nothing is registered, recorded or written.
    /// Its overhead is pinned by the `round_latency` bench — runners see
    /// no observer at all, i.e. the pre-telemetry fast path.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Metrics only: a fresh registry, no trace stream.
    pub fn enabled() -> Self {
        Self {
            inner: Some(Arc::new(TelemetryInner {
                metrics: Metrics::new(),
                trace: None,
                sample: 0,
            })),
        }
    }

    /// Metrics plus a trace stream recording every `sample`-th round
    /// (`sample` is clamped to at least 1).
    pub fn with_trace(trace: TraceWriter, sample: u64) -> Self {
        Self {
            inner: Some(Arc::new(TelemetryInner {
                metrics: Metrics::new(),
                trace: Some(trace),
                sample: sample.max(1),
            })),
        }
    }

    /// Env-gated construction for benches and binaries: always enables
    /// metrics; attaches a `TRACE_<name>.jsonl` stream (in
    /// [`artifact_dir`]) iff `$SMST_TRACE_SAMPLE` requests sampling. An
    /// unparsable `$SMST_TRACE_SAMPLE` warns once on stderr (via
    /// [`trace_sample_from_env`]) instead of silently disabling tracing.
    ///
    /// # Panics
    ///
    /// Panics if the requested trace file cannot be created.
    pub fn from_env(name: &str) -> Self {
        match trace_sample_from_env() {
            0 => Self::enabled(),
            sample => {
                let trace = TraceWriter::create(name)
                    .unwrap_or_else(|e| panic!("creating TRACE_{name}.jsonl: {e}"));
                Self::with_trace(trace, sample)
            }
        }
    }

    /// Whether telemetry is enabled.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The path of the attached trace stream, if any.
    pub fn trace_path(&self) -> Option<&Path> {
        self.inner
            .as_ref()
            .and_then(|inner| inner.trace.as_ref())
            .map(TraceWriter::path)
    }

    /// A handle to the named counter ([`Counter::noop`] when disabled).
    pub fn counter(&self, name: &str) -> Counter {
        self.inner
            .as_ref()
            .map_or_else(Counter::noop, |inner| inner.metrics.counter(name))
    }

    /// A handle to the named histogram ([`Histogram::noop`] when
    /// disabled).
    pub fn histogram(&self, name: &str) -> Histogram {
        self.inner
            .as_ref()
            .map_or_else(Histogram::noop, |inner| inner.metrics.histogram(name))
    }

    /// A snapshot of the registry (empty when disabled).
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.inner
            .as_ref()
            .map_or_else(MetricsSnapshot::default, |inner| inner.metrics.snapshot())
    }

    /// Flushes the trace stream, if any.
    pub fn flush(&self) -> std::io::Result<()> {
        match self.inner.as_ref().and_then(|inner| inner.trace.as_ref()) {
            Some(trace) => trace.flush(),
            None => Ok(()),
        }
    }

    /// A [`RoundObserver`] feeding this telemetry, attributing trace
    /// records to `run` (a replayable identifier: `TrialId`, seed, bench
    /// case). **`None` when disabled** — callers attach no observer at
    /// all, so disabled telemetry leaves runners on their chunked,
    /// clock-free fast path.
    pub fn observer(&self, run: &str) -> Option<Box<dyn RoundObserver>> {
        let inner = self.inner.as_ref()?;
        Some(Box::new(TelemetryObserver {
            rounds: inner.metrics.counter(names::ROUNDS_OBSERVED),
            alarms: inner.metrics.counter(names::ALARMS_TOTAL),
            activations: inner.metrics.counter(names::ACTIVATIONS_TOTAL),
            halo_bytes: inner.metrics.counter(names::HALO_BYTES),
            round_ns: inner.metrics.histogram(names::PHASE_ROUND_NS),
            dispatch_ns: inner.metrics.histogram(names::PHASE_DISPATCH_NS),
            compute_ns: inner.metrics.histogram(names::PHASE_COMPUTE_NS),
            barrier_ns: inner.metrics.histogram(names::PHASE_BARRIER_NS),
            exchange_ns: inner.metrics.histogram(names::PHASE_EXCHANGE_NS),
            inner: Arc::clone(inner),
            run: run.to_string(),
        }))
    }
}

/// The [`RoundObserver`] an enabled [`Telemetry`] hands out: pre-resolved
/// metric handles (no registry lock on the round path) plus the sampled
/// trace stream.
#[derive(Debug)]
pub struct TelemetryObserver {
    inner: Arc<TelemetryInner>,
    run: String,
    rounds: Counter,
    alarms: Counter,
    activations: Counter,
    halo_bytes: Counter,
    round_ns: Histogram,
    dispatch_ns: Histogram,
    compute_ns: Histogram,
    barrier_ns: Histogram,
    exchange_ns: Histogram,
}

impl RoundObserver for TelemetryObserver {
    fn on_round(&mut self, stats: &RoundStats) {
        self.rounds.incr();
        self.alarms.add(stats.alarms as u64);
        self.activations.add(stats.activations as u64);
        self.halo_bytes.add(stats.halo_bytes);
        self.round_ns.record(stats.total_phase_ns());
        self.dispatch_ns.record(stats.dispatch_ns);
        self.compute_ns.record(stats.compute_ns);
        self.barrier_ns.record(stats.barrier_ns);
        self.exchange_ns.record(stats.exchange_ns);
        if let Some(trace) = &self.inner.trace {
            if (stats.round as u64).is_multiple_of(self.inner.sample) {
                trace.write_round(&self.run, stats);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stat(round: usize) -> RoundStats {
        RoundStats {
            round,
            alarms: 1,
            activations: 8,
            halo_bytes: 64,
            dispatch_ns: 10,
            compute_ns: 70,
            barrier_ns: 15,
            exchange_ns: 5,
        }
    }

    #[test]
    fn disabled_telemetry_hands_out_nothing() {
        let off = Telemetry::disabled();
        assert!(!off.is_enabled());
        assert!(off.observer("x").is_none());
        assert!(off.counter("c").is_noop());
        assert!(off.histogram("h").is_noop());
        assert!(off.snapshot().is_empty());
        assert!(off.trace_path().is_none());
        off.flush().unwrap();
    }

    #[test]
    fn observer_feeds_the_shared_registry() {
        let tel = Telemetry::enabled();
        let mut obs = tel.observer("run-a").unwrap();
        obs.on_round(&stat(0));
        obs.on_round(&stat(1));
        // a second observer (another run) feeds the same registry
        let mut obs2 = tel.clone().observer("run-b").unwrap();
        obs2.on_round(&stat(2));
        let snap = tel.snapshot();
        assert_eq!(snap.counters[names::ROUNDS_OBSERVED], 3);
        assert_eq!(snap.counters[names::ALARMS_TOTAL], 3);
        assert_eq!(snap.counters[names::ACTIVATIONS_TOTAL], 24);
        assert_eq!(snap.counters[names::HALO_BYTES], 192);
        assert_eq!(snap.histograms[names::PHASE_ROUND_NS].count, 3);
        assert_eq!(snap.histograms[names::PHASE_ROUND_NS].sum, 300);
        assert_eq!(snap.histograms[names::PHASE_COMPUTE_NS].sum, 210);
    }

    #[test]
    fn trace_sampling_keeps_every_kth_round() {
        let dir = std::env::temp_dir().join("smst_telemetry_lib_test");
        std::fs::create_dir_all(&dir).unwrap();
        let writer = TraceWriter::create_in(&dir, "sampled").unwrap();
        let tel = Telemetry::with_trace(writer, 2);
        let mut obs = tel.observer("seed=3").unwrap();
        for round in 0..5 {
            obs.on_round(&stat(round));
        }
        tel.flush().unwrap();
        let body = std::fs::read_to_string(tel.trace_path().unwrap()).unwrap();
        let rounds: Vec<&str> = body.lines().collect();
        // rounds 0, 2, 4 sampled at k = 2
        assert_eq!(rounds.len(), 3);
        assert!(rounds.iter().all(|l| l.contains("\"run\":\"seed=3\"")));
        assert!(rounds[2].contains("\"round\":4"));
        // the metrics side still sees every round
        assert_eq!(tel.snapshot().counters[names::ROUNDS_OBSERVED], 5);
    }
}
