//! The flight recorder: a fixed-size ring buffer of recent
//! [`RoundStats`], dumped as `FLIGHT_<name>.json` when a run dies.
//!
//! Chaos postmortems (the typed [`PoolError`] surface) say *what* killed a
//! run — a tripped barrier watchdog, an exhausted recovery policy — but
//! not what the rounds leading up to the failure looked like. A
//! [`FlightRecorder`] is a [`RoundObserver`] that keeps only the last
//! `capacity` rounds in a ring buffer (O(capacity) memory no matter how
//! long the run), so the driver can attach it to any runner and, on a
//! `BarrierTimeout` or caught panic, dump the final window to a
//! `FLIGHT_<name>.json` artifact carrying the failure reason.
//!
//! Cloning is shallow, mirroring
//! [`RecordingObserver`](smst_sim::RecordingObserver): keep one clone,
//! hand the other to the runner via `set_observer`, and dump from the
//! kept clone after the runner dies (the runner consumed its observer, but
//! the ring is shared).
//!
//! Artifact schema:
//!
//! ```json
//! {"schema":"smst-flight-v1","name":"chaos_stall",
//!  "reason":"barrier timeout after 100ms","capacity":32,"rounds_seen":70,
//!  "rounds":[{"round":38,"alarms":0,"activations":192,"halo_bytes":0,
//!             "dispatch_ns":10,"compute_ns":80,"barrier_ns":5,"exchange_ns":5}]}
//! ```
//!
//! `rounds` holds at most `capacity` entries, oldest first — the final
//! window of a `rounds_seen`-round run.
//!
//! [`PoolError`]: https://docs.rs/ (see `smst_engine::PoolError`)

use crate::json::{json_string, round_fields};
use smst_sim::{RoundObserver, RoundStats};
use std::collections::VecDeque;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

#[derive(Debug, Default)]
struct FlightInner {
    rounds: VecDeque<RoundStats>,
    seen: usize,
}

/// A [`RoundObserver`] ring buffer holding the last `capacity` rounds.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    inner: Arc<Mutex<FlightInner>>,
    capacity: usize,
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` rounds (clamped to at
    /// least 1 — a zero-capacity recorder could never explain anything).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Arc::new(Mutex::new(FlightInner::default())),
            capacity: capacity.max(1),
        }
    }

    /// The ring capacity (the maximum window the dump can carry).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FlightInner> {
        self.inner.lock().expect("flight recorder lock poisoned")
    }

    /// Total rounds observed over the recorder's lifetime (not capped by
    /// the ring).
    pub fn rounds_seen(&self) -> usize {
        self.lock().seen
    }

    /// Rounds currently held in the ring (`min(rounds_seen, capacity)`).
    pub fn len(&self) -> usize {
        self.lock().rounds.len()
    }

    /// Whether nothing was observed yet.
    pub fn is_empty(&self) -> bool {
        self.lock().rounds.is_empty()
    }

    /// The retained window, oldest first (a snapshot clone).
    pub fn recent(&self) -> Vec<RoundStats> {
        self.lock().rounds.iter().cloned().collect()
    }

    /// The `FLIGHT_<name>.json` document for this recorder's current
    /// window, stamped with the failure `reason` (see the module docs for
    /// the schema).
    pub fn to_json(&self, name: &str, reason: &str) -> String {
        let inner = self.lock();
        let rounds: Vec<String> = inner
            .rounds
            .iter()
            .map(|s| format!("{{{}}}", round_fields(s)))
            .collect();
        format!(
            "{{\"schema\":\"smst-flight-v1\",\"name\":{},\"reason\":{},\
             \"capacity\":{},\"rounds_seen\":{},\"rounds\":[{}]}}\n",
            json_string(name),
            json_string(reason),
            self.capacity,
            inner.seen,
            rounds.join(",")
        )
    }

    /// Writes `FLIGHT_<name>.json` into `dir` and returns its path (the
    /// injectable core — tests pass a directory instead of mutating the
    /// process-global `SMST_BENCH_DIR`).
    pub fn write_json_to(&self, dir: &Path, name: &str, reason: &str) -> io::Result<PathBuf> {
        let path = dir.join(format!("FLIGHT_{name}.json"));
        let mut file = std::fs::File::create(&path)?;
        file.write_all(self.to_json(name, reason).as_bytes())?;
        Ok(path)
    }

    /// Writes `FLIGHT_<name>.json` into
    /// [`artifact_dir`](crate::artifact_dir) and returns its path.
    pub fn write_json(&self, name: &str, reason: &str) -> io::Result<PathBuf> {
        self.write_json_to(&crate::artifact_dir(), name, reason)
    }
}

impl RoundObserver for FlightRecorder {
    fn on_round(&mut self, stats: &RoundStats) {
        let capacity = self.capacity;
        let mut inner = self.lock();
        if inner.rounds.len() == capacity {
            inner.rounds.pop_front();
        }
        inner.rounds.push_back(stats.clone());
        inner.seen += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stat(round: usize) -> RoundStats {
        RoundStats {
            round,
            alarms: round % 3,
            activations: 20,
            halo_bytes: 4,
            dispatch_ns: 1,
            compute_ns: 2,
            barrier_ns: 3,
            exchange_ns: 4,
        }
    }

    #[test]
    fn ring_keeps_only_the_final_window() {
        let recorder = FlightRecorder::new(4);
        let mut handle = recorder.clone();
        assert!(recorder.is_empty());
        for round in 0..10 {
            handle.on_round(&stat(round));
        }
        assert_eq!(recorder.rounds_seen(), 10);
        assert_eq!(recorder.len(), 4);
        let window: Vec<usize> = recorder.recent().iter().map(|s| s.round).collect();
        assert_eq!(window, vec![6, 7, 8, 9], "oldest first, last four rounds");
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut recorder = FlightRecorder::new(0);
        assert_eq!(recorder.capacity(), 1);
        recorder.on_round(&stat(0));
        recorder.on_round(&stat(1));
        assert_eq!(recorder.len(), 1);
        assert_eq!(recorder.recent()[0].round, 1);
    }

    #[test]
    fn dump_pins_the_flight_schema() {
        let dir = std::env::temp_dir().join("smst_telemetry_flight_test");
        std::fs::create_dir_all(&dir).unwrap();
        let recorder = FlightRecorder::new(2);
        let mut handle = recorder.clone();
        for round in 0..3 {
            handle.on_round(&stat(round));
        }
        let path = recorder
            .write_json_to(&dir, "unit", "barrier timeout after 100ms")
            .unwrap();
        assert_eq!(
            path.file_name().unwrap().to_string_lossy(),
            "FLIGHT_unit.json"
        );
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.starts_with(
            "{\"schema\":\"smst-flight-v1\",\"name\":\"unit\",\
             \"reason\":\"barrier timeout after 100ms\",\
             \"capacity\":2,\"rounds_seen\":3,\"rounds\":["
        ));
        assert!(body.contains("\"round\":1"));
        assert!(body.contains("\"round\":2"));
        assert!(
            !body.contains("\"round\":0"),
            "round 0 fell out of the ring"
        );
        assert!(body.ends_with("}\n"));
    }

    #[test]
    fn empty_recorder_dumps_an_empty_window() {
        let recorder = FlightRecorder::new(8);
        let json = recorder.to_json("idle", "caught panic");
        assert!(json.contains("\"rounds_seen\":0,\"rounds\":[]"));
    }
}
