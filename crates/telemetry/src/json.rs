//! Hand-rolled JSON fragments shared by the trace and rounds writers.
//!
//! The offline workspace has no serde; `json_string` duplicates the one
//! escaping rule of `smst_bench::harness::json_string` (this crate sits
//! *below* the bench crate in the dependency graph, so it cannot import
//! it), and `round_fields` is the single source of truth for the
//! per-round record schema shared by `TRACE_*.jsonl` lines and
//! `BENCH_rounds*.json` entries.

use smst_sim::RoundStats;

/// Minimal JSON string escaping (same rule as the bench harness).
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The eight per-round fields, as a comma-joined JSON object body (no
/// braces): `round`, `alarms`, `activations`, `halo_bytes` are the
/// deterministic projection, the four `*_ns` fields the wall-clock phase
/// split.
pub(crate) fn round_fields(stats: &RoundStats) -> String {
    format!(
        "\"round\":{},\"alarms\":{},\"activations\":{},\"halo_bytes\":{},\
         \"dispatch_ns\":{},\"compute_ns\":{},\"barrier_ns\":{},\"exchange_ns\":{}",
        stats.round,
        stats.alarms,
        stats.activations,
        stats.halo_bytes,
        stats.dispatch_ns,
        stats.compute_ns,
        stats.barrier_ns,
        stats.exchange_ns
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_matches_the_harness_rule() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("x\ny"), "\"x\\ny\"");
    }

    #[test]
    fn round_fields_carry_all_eight_columns() {
        let body = round_fields(&RoundStats {
            round: 3,
            alarms: 1,
            activations: 10,
            halo_bytes: 64,
            dispatch_ns: 5,
            compute_ns: 6,
            barrier_ns: 7,
            exchange_ns: 8,
        });
        assert_eq!(
            body,
            "\"round\":3,\"alarms\":1,\"activations\":10,\"halo_bytes\":64,\
             \"dispatch_ns\":5,\"compute_ns\":6,\"barrier_ns\":7,\"exchange_ns\":8"
        );
    }
}
