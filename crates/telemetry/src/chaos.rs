//! The chaos-campaign artifact: `BENCH_chaos*.json` with one record per
//! fault wave — the verify-forever sibling of [`rounds`](crate::rounds).
//!
//! A [`ChaosArtifact`] collects labelled campaign runs. Each run carries
//! the schedule grammar it executed (`FaultSchedule::describe()`), the
//! run-level totals, and the per-wave [`WaveStats`] books: detection
//! latency (steps from wave to first alarm) and rounds-to-quiescence
//! (steps from wave until every node accepts again, the MTTR-style
//! figure). Censored waves — cut off by the next wave or the end of the
//! run — serialize their latencies as `null` rather than a fabricated
//! number. Writing follows the same group-named, injectable-directory
//! discipline as [`RoundsArtifact`](crate::rounds::RoundsArtifact).
//!
//! Artifact schema (the `smst-rounds-v1` family):
//!
//! ```json
//! {"schema":"smst-chaos-v1","group":"chaos",
//!  "runs":[{"label":"<case>","run":"<replay id>",
//!           "schedule":"periodic(period=8,offset=0,f=4,seed=7)",
//!           "steps_run":64,"injected_faults":32,
//!           "detected_waves":8,"quiesced_waves":8,
//!           "mean_detection_latency":1.0,"mean_quiescence":5.5,
//!           "waves":[{"wave":0,"step":0,"faults":4,
//!                     "detection_latency":1,"quiescence":6}]}]}
//! ```

use crate::json::json_string;
use smst_sim::WaveStats;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// One labelled chaos campaign inside a [`ChaosArtifact`].
#[derive(Debug, Clone)]
pub struct ChaosRun {
    /// Case label (what was run — mirrors bench case naming).
    pub label: String,
    /// Replay correlation: seed, config description, trial id.
    pub run: String,
    /// The schedule grammar (`FaultSchedule::describe()`).
    pub schedule: String,
    /// Steps the campaign executed.
    pub steps_run: usize,
    /// Total registers corrupted across all waves.
    pub injected_faults: usize,
    /// Per-wave accounting, in firing order.
    pub waves: Vec<WaveStats>,
}

impl ChaosRun {
    /// Waves with a recorded detection latency.
    pub fn detected_waves(&self) -> usize {
        self.waves
            .iter()
            .filter(|w| w.detection_latency.is_some())
            .count()
    }

    /// Waves with a recorded quiescence.
    pub fn quiesced_waves(&self) -> usize {
        self.waves.iter().filter(|w| w.quiescence.is_some()).count()
    }

    fn mean(values: impl Iterator<Item = usize>) -> Option<f64> {
        let (mut sum, mut count) = (0usize, 0usize);
        for v in values {
            sum += v;
            count += 1;
        }
        (count > 0).then(|| sum as f64 / count as f64)
    }

    /// Mean detection latency over the detected waves, in steps.
    pub fn mean_detection_latency(&self) -> Option<f64> {
        Self::mean(self.waves.iter().filter_map(|w| w.detection_latency))
    }

    /// Mean rounds-to-quiescence over the quiesced waves, in steps.
    pub fn mean_quiescence(&self) -> Option<f64> {
        Self::mean(self.waves.iter().filter_map(|w| w.quiescence))
    }
}

fn json_opt_usize(v: Option<usize>) -> String {
    v.map_or_else(|| "null".to_string(), |x| x.to_string())
}

fn json_opt_f64(v: Option<f64>) -> String {
    v.map_or_else(|| "null".to_string(), |x| format!("{x}"))
}

/// Collects chaos campaigns and writes `BENCH_<group>.json`.
#[derive(Debug, Default)]
pub struct ChaosArtifact {
    group: String,
    runs: Vec<ChaosRun>,
}

impl ChaosArtifact {
    /// An empty artifact for `group` (written as `BENCH_<group>.json`;
    /// the chaos smoke uses group `"chaos"` → literally
    /// `BENCH_chaos.json`).
    pub fn new(group: &str) -> Self {
        Self {
            group: group.to_string(),
            runs: Vec::new(),
        }
    }

    /// The artifact's group name.
    pub fn group(&self) -> &str {
        &self.group
    }

    /// Appends one campaign.
    pub fn push(&mut self, run: ChaosRun) {
        self.runs.push(run);
    }

    /// Number of campaigns collected so far.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// Whether no campaigns were collected.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// The artifact as a JSON document (see the module docs for the
    /// schema).
    pub fn to_json(&self) -> String {
        let runs: Vec<String> = self
            .runs
            .iter()
            .map(|run| {
                let waves: Vec<String> = run
                    .waves
                    .iter()
                    .map(|w| {
                        format!(
                            "{{\"wave\":{},\"step\":{},\"faults\":{},\
                             \"detection_latency\":{},\"quiescence\":{}}}",
                            w.wave,
                            w.step,
                            w.faults,
                            json_opt_usize(w.detection_latency),
                            json_opt_usize(w.quiescence)
                        )
                    })
                    .collect();
                format!(
                    "{{\"label\":{},\"run\":{},\"schedule\":{},\
                     \"steps_run\":{},\"injected_faults\":{},\
                     \"detected_waves\":{},\"quiesced_waves\":{},\
                     \"mean_detection_latency\":{},\"mean_quiescence\":{},\
                     \"waves\":[{}]}}",
                    json_string(&run.label),
                    json_string(&run.run),
                    json_string(&run.schedule),
                    run.steps_run,
                    run.injected_faults,
                    run.detected_waves(),
                    run.quiesced_waves(),
                    json_opt_f64(run.mean_detection_latency()),
                    json_opt_f64(run.mean_quiescence()),
                    waves.join(",")
                )
            })
            .collect();
        format!(
            "{{\"schema\":\"smst-chaos-v1\",\"group\":{},\"runs\":[{}]}}\n",
            json_string(&self.group),
            runs.join(",")
        )
    }

    /// Writes `BENCH_<group>.json` into `dir` and returns its path (the
    /// injectable core — tests pass a directory instead of mutating the
    /// process-global `SMST_BENCH_DIR`).
    pub fn write_json_to(&self, dir: &Path) -> io::Result<PathBuf> {
        let path = dir.join(format!("BENCH_{}.json", self.group));
        let mut file = std::fs::File::create(&path)?;
        file.write_all(self.to_json().as_bytes())?;
        Ok(path)
    }

    /// Writes `BENCH_<group>.json` into
    /// [`artifact_dir`](crate::artifact_dir) and returns its path.
    pub fn write_json(&self) -> io::Result<PathBuf> {
        self.write_json_to(&crate::artifact_dir())
    }

    /// Writes the artifact, printing where it went (panics on I/O errors
    /// — an artifact run that silently loses its results is worse than
    /// one that fails).
    pub fn finish(self) -> PathBuf {
        let path = self.write_json().expect("writing the chaos JSON artifact");
        println!("  chaos -> {}", path.display());
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wave(i: usize, step: usize, det: Option<usize>, qui: Option<usize>) -> WaveStats {
        WaveStats {
            wave: i,
            step,
            faults: 4,
            detection_latency: det,
            quiescence: qui,
        }
    }

    fn sample_run() -> ChaosRun {
        ChaosRun {
            label: "sharded-sync(threads=4)".to_string(),
            run: "seed=7".to_string(),
            schedule: "periodic(period=8,offset=0,f=4,seed=7)".to_string(),
            steps_run: 24,
            injected_faults: 12,
            waves: vec![
                wave(0, 0, Some(1), Some(6)),
                wave(1, 8, Some(2), Some(7)),
                wave(2, 16, None, None),
            ],
        }
    }

    #[test]
    fn summaries_skip_censored_waves() {
        let run = sample_run();
        assert_eq!(run.detected_waves(), 2);
        assert_eq!(run.quiesced_waves(), 2);
        assert_eq!(run.mean_detection_latency(), Some(1.5));
        assert_eq!(run.mean_quiescence(), Some(6.5));
        let empty = ChaosRun {
            waves: vec![wave(0, 0, None, None)],
            ..run
        };
        assert_eq!(empty.mean_detection_latency(), None);
    }

    #[test]
    fn artifact_roundtrip_through_a_directory() {
        let dir = std::env::temp_dir().join("smst_telemetry_chaos_test");
        std::fs::create_dir_all(&dir).unwrap();
        let mut artifact = ChaosArtifact::new("chaos_unit");
        assert!(artifact.is_empty());
        artifact.push(sample_run());
        assert_eq!(artifact.len(), 1);
        let path = artifact.write_json_to(&dir).unwrap();
        assert_eq!(
            path.file_name().unwrap().to_string_lossy(),
            "BENCH_chaos_unit.json"
        );
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.starts_with("{\"schema\":\"smst-chaos-v1\",\"group\":\"chaos_unit\""));
        assert!(body.contains("\"schedule\":\"periodic(period=8,offset=0,f=4,seed=7)\""));
        assert!(body.contains("\"detected_waves\":2"));
        assert!(body.contains(
            "{\"wave\":0,\"step\":0,\"faults\":4,\"detection_latency\":1,\"quiescence\":6}"
        ));
        assert!(body.contains(
            "{\"wave\":2,\"step\":16,\"faults\":4,\
                               \"detection_latency\":null,\"quiescence\":null}"
        ));
    }
}
