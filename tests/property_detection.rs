//! Property tests: corrupted proofs on spanning non-MST trees are always
//! detected within the paper's round budget — on the sequential runner AND
//! on the sharded parallel engine, with identical detection times (the
//! engine's determinism contract).

use proptest::prelude::*;
use smst_core::scheme::{rounds_until_rejection, MstVerificationScheme};
use smst_core::CoreLabel;
use smst_engine::adapters::rounds_until_rejection_engine;
use smst_engine::EngineConfig;
use smst_graph::generators::random_connected_graph;
use smst_graph::mst::kruskal;
use smst_graph::{EdgeId, NodeId, RootedTree};
use smst_labeling::Instance;

/// Builds a random spanning **non**-MST tree of a random connected graph by
/// swapping one tree edge for a non-tree edge, together with the stale
/// marker labels of the *correct* MST. Returns `None` when the sampled
/// graph admits no such swap (e.g. the graph is itself a tree).
fn non_mst_with_stale_labels(
    n: usize,
    seed: u64,
    swap_choice: usize,
) -> Option<(Instance, Vec<CoreLabel>)> {
    let g = random_connected_graph(n, 3 * n, seed);
    let mst = kruskal(&g);
    let tree = mst.rooted_at(&g, NodeId(0)).ok()?;
    let correct = Instance::from_tree(g.clone(), &tree);
    let (labels, _) = MstVerificationScheme::new().mark(&correct).ok()?;

    let non_tree: Vec<EdgeId> = g
        .edge_entries()
        .map(|(e, _)| e)
        .filter(|e| !mst.contains(*e))
        .collect();
    if non_tree.is_empty() {
        return None;
    }
    // try swaps starting from a sampled position until one yields a
    // spanning non-MST tree
    for k in 0..non_tree.len() * mst.edges().len() {
        let idx = (swap_choice + k) % (non_tree.len() * mst.edges().len());
        let extra = non_tree[idx % non_tree.len()];
        let drop_pos = idx / non_tree.len();
        let mut edges = mst.edges().to_vec();
        edges[drop_pos] = extra;
        if let Ok(t) = RootedTree::from_edges(&g, &edges, NodeId(0)) {
            let candidate = Instance::from_tree(g.clone(), &t);
            if !candidate.satisfies_mst() {
                return Some((candidate, labels));
            }
        }
    }
    None
}

/// The paper's (generous, polylogarithmic) detection budget used by the
/// experiment drivers.
fn budget(n: usize) -> usize {
    8 * MstVerificationScheme::sync_budget(n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]
    #[test]
    fn corrupted_label_on_non_mst_tree_is_detected_by_both_runners(
        n in 10usize..15,
        seed in 0u64..500,
        swap_choice in 0usize..64,
        victim in 0usize..64,
        delta in 1u64..9,
    ) {
        let Some((bad, mut labels)) = non_mst_with_stale_labels(n, seed, swap_choice)
        else {
            return Ok(());
        };
        // corrupt one label: bump the SP distance of a random node (a
        // structurally checkable field, so detection is near-immediate and
        // the property exercises the fast path of the verifier)
        let victim = victim % n;
        labels[victim].sp.dist = labels[victim].sp.dist.wrapping_add(delta);

        let budget = budget(n);
        let seq = rounds_until_rejection(&bad, labels.clone(), budget);
        prop_assert!(
            seq.is_some(),
            "sequential runner missed a corrupted label on a non-MST tree"
        );
        prop_assert!(seq.unwrap() <= budget);

        let par = rounds_until_rejection_engine(
            &bad,
            labels,
            budget,
            &EngineConfig::new().threads(4),
        )
        .expect("a plain sync envelope is valid");
        prop_assert_eq!(par, seq, "sharded detection time diverged from sequential");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]
    #[test]
    fn stale_labels_on_non_mst_tree_are_detected_by_both_runners(
        n in 8usize..13,
        seed in 0u64..300,
        swap_choice in 0usize..32,
    ) {
        // no label corruption at all: the *tree* is wrong, the labels are
        // the stale (internally consistent) proof of the correct MST, so
        // detection must come from the minimality / comparison machinery
        let Some((bad, labels)) = non_mst_with_stale_labels(n, seed, swap_choice)
        else {
            return Ok(());
        };
        let budget = budget(n);
        let seq = rounds_until_rejection(&bad, labels.clone(), budget);
        prop_assert!(
            seq.is_some(),
            "sequential runner missed a spanning non-MST tree within the bound"
        );

        let par = rounds_until_rejection_engine(
            &bad,
            labels,
            budget,
            &EngineConfig::new().threads(3),
        )
        .expect("a plain sync envelope is valid");
        prop_assert_eq!(par, seq, "sharded detection time diverged from sequential");
    }
}
