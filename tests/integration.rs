//! Cross-crate integration tests: construction → marking → verification →
//! fault detection → self-stabilization, exercised end to end.

use smst_core::faults::FaultKind;
use smst_core::scheme::{rounds_until_rejection, run_sync_fault_experiment, MstVerificationScheme};
use smst_core::SyncMst;
use smst_graph::generators::{caterpillar_graph, grid_graph, random_connected_graph, ring_graph};
use smst_graph::mst::{is_mst, kruskal};
use smst_graph::{NodeId, RootedTree};
use smst_labeling::Instance;
use smst_selfstab::{SelfStabilizingMst, Variant};
use smst_sim::{FaultPlan, SyncRunner};

fn instance_from(graph: smst_graph::WeightedGraph) -> Instance {
    let tree = kruskal(&graph)
        .rooted_at(&graph, NodeId(0))
        .expect("connected");
    Instance::from_tree(graph, &tree)
}

#[test]
fn construction_marking_and_verification_agree_across_topologies() {
    let graphs = vec![
        random_connected_graph(20, 60, 1),
        ring_graph(16, 2),
        grid_graph(4, 5, 3),
        caterpillar_graph(5, 3, 4),
    ];
    for graph in graphs {
        // SYNC_MST agrees with Kruskal
        let outcome = SyncMst.run(&graph);
        assert!(is_mst(&graph, &outcome.tree.edges()));

        // marker labels are accepted by the verifier
        let inst = instance_from(graph);
        let scheme = MstVerificationScheme::new();
        let (labels, report) = scheme.mark(&inst).unwrap();
        assert!(report.total_rounds() <= 130 * inst.node_count() as u64);
        let verifier = scheme.verifier(&inst, labels);
        let mut runner = SyncRunner::new(&verifier, verifier.network());
        runner.run_rounds(MstVerificationScheme::sync_budget(inst.node_count()));
        assert!(runner.network().all_accept(&verifier));
    }
}

#[test]
fn injected_faults_are_detected_within_the_polylog_budget() {
    let inst = instance_from(random_connected_graph(24, 70, 9));
    for kind in [
        FaultKind::SpDistance,
        FaultKind::StoredPieceWeight,
        FaultKind::EndpString,
    ] {
        let plan = FaultPlan::random(24, 1, 77);
        let outcome = run_sync_fault_experiment(&inst, &plan, kind, 8);
        assert!(outcome.report.detected, "{kind:?} was not detected");
        let n = inst.node_count();
        assert!(
            outcome.report.detection_time.unwrap() <= 4 * MstVerificationScheme::sync_budget(n),
            "{kind:?} took too long"
        );
    }
}

#[test]
fn a_non_mst_candidate_with_stale_labels_is_rejected() {
    let graph = random_connected_graph(16, 48, 11);
    let mst = kruskal(&graph);
    let tree = mst.rooted_at(&graph, NodeId(0)).unwrap();
    let correct = Instance::from_tree(graph.clone(), &tree);
    let (labels, _) = MstVerificationScheme::new().mark(&correct).unwrap();

    // swap a tree edge for a heavier non-tree edge
    let mut bad = None;
    'outer: for (e, _) in graph.edge_entries() {
        if mst.contains(e) {
            continue;
        }
        for i in 0..mst.edges().len() {
            let mut edges = mst.edges().to_vec();
            edges[i] = e;
            if let Ok(t) = RootedTree::from_edges(&graph, &edges, NodeId(0)) {
                let cand = Instance::from_tree(graph.clone(), &t);
                if !cand.satisfies_mst() {
                    bad = Some(cand);
                    break 'outer;
                }
            }
        }
    }
    let bad = bad.expect("a non-MST spanning tree exists");
    let budget = 8 * MstVerificationScheme::sync_budget(16);
    assert!(rounds_until_rejection(&bad, labels, budget).is_some());
}

#[test]
fn self_stabilization_reaches_the_mst_from_arbitrary_configurations() {
    let graph = random_connected_graph(32, 90, 13);
    for variant in Variant::all() {
        let outcome = SelfStabilizingMst::new(variant).stabilize_from_garbage(&graph, 3);
        assert!(
            outcome.output_correct,
            "{variant:?} did not stabilize to the MST"
        );
        // the stabilized components are exactly the unique MST
        let inst = Instance::new(graph.clone(), outcome.components.clone());
        let mut edges = inst.candidate_tree().unwrap().edges();
        edges.sort_unstable();
        assert_eq!(edges, kruskal(&graph).edges());
    }
}

#[test]
fn verifier_register_memory_stays_logarithmic_while_baseline_grows() {
    let points = smst_bench::memory_sweep(&[32, 128, 512], 21);
    // paper: words of log n stay within a constant band
    let w: Vec<f64> = points.iter().map(|p| p.paper_words).collect();
    assert!(w[2] < w[0] * 1.6 + 1.0);
    // baseline: words of log n grow with n
    assert!(points[2].one_round_words > points[0].one_round_words);
}

#[test]
fn blown_up_instances_preserve_the_mst_property() {
    use smst_graph::blowup::blowup;
    let graph = random_connected_graph(10, 20, 5);
    let tree = kruskal(&graph).rooted_at(&graph, NodeId(0)).unwrap();
    let b = blowup(&graph, &tree, 3);
    let blown_tree = b.components.rooted_spanning_tree(&b.graph).unwrap();
    assert!(is_mst(&b.graph, &blown_tree.edges()));
    // and the blown-up instance is accepted by the verifier end-to-end
    let inst = Instance::new(b.graph.clone(), b.components.clone());
    assert!(inst.satisfies_mst());
}

#[test]
fn broken_component_pointers_are_detected() {
    let inst = instance_from(random_connected_graph(18, 50, 6));
    let (labels, _) = MstVerificationScheme::new().mark(&inst).unwrap();
    // re-point one node at a different neighbour, producing a non-tree
    let graph = inst.graph.clone();
    let mut components = inst.components.clone();
    let victim = NodeId(5);
    let current = components.pointer(victim);
    let new_port = (0..graph.degree(victim))
        .map(smst_graph::Port)
        .find(|&p| Some(p) != current)
        .unwrap();
    components.set_pointer(victim, Some(new_port));
    let broken = Instance::new(graph, components);
    if !broken.satisfies_mst() {
        let budget = 8 * MstVerificationScheme::sync_budget(18);
        assert!(rounds_until_rejection(&broken, labels, budget).is_some());
    }
}
