//! # smst
//!
//! Umbrella crate for the reproduction of *"Fast and compact self-stabilizing
//! verification, computation, and fault detection of an MST"* (Korman,
//! Kutten, Masuzawa; PODC 2011), re-exporting every workspace crate under one
//! roof. The root package also hosts the `examples/` and the cross-crate
//! integration tests in `tests/`.
//!
//! Crate map:
//!
//! * [`graph`] — weighted port-numbered graphs, generators, MST ground truth;
//! * [`rng`] — deterministic PRNGs (SplitMix64, PCG) shared by every crate;
//! * [`sim`] — the sequential shared-memory simulator (§2 execution model);
//! * [`engine`] — the sharded, deterministic, **parallel** execution engine
//!   for million-node runs;
//! * [`labeling`] — proof-labeling schemes and baselines;
//! * [`core`] — the paper's marker and `O(log n)`-bit verifier;
//! * [`selfstab`] — the enhanced Awerbuch–Varghese transformer;
//! * [`telemetry`] — metrics registry, phase-level round tracing and the
//!   per-round accounting artifacts;
//! * [`mod@bench`] — experiment drivers and the timing harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use smst_bench as bench;
pub use smst_core as core;
pub use smst_engine as engine;
pub use smst_graph as graph;
pub use smst_labeling as labeling;
pub use smst_rng as rng;
pub use smst_selfstab as selfstab;
pub use smst_sim as sim;
pub use smst_telemetry as telemetry;
