//! Million-node run on the sharded execution engine.
//!
//! Builds a ~10⁶-node random connected graph, floods the minimum identity
//! with [`MinIdFlood`] on the [`ParallelSyncRunner`] until every node
//! accepts, injects a burst of transient faults, and measures the healing
//! wave — printing per-round throughput along the way. The run uses the
//! engine's persistent worker pool (rounds are dispatched to parked
//! workers, no per-round thread spawns) and the RCM layout pass
//! (neighbour-renumbered CSR + shard-local state arenas); a final spot
//! check re-runs a prefix on one thread **without** the layout and asserts
//! bit-for-bit equality — the engine's determinism contract covers both
//! knobs.
//!
//! Run with: `cargo run --release --example million_nodes`
//! (release mode matters: this is a throughput demonstration).

use smst_engine::layout::mean_bandwidth;
use smst_engine::programs::MinIdFlood;
use smst_engine::{default_threads, CsrTopology, LayoutPolicy, ParallelSyncRunner};
use smst_graph::generators::random_connected_graph;
use smst_sim::FaultPlan;
use std::time::Instant;

fn main() {
    let n = 1_000_000;
    let m = 3 * n / 2;
    let threads = default_threads();
    println!("building a random connected graph: n = {n}, m ≈ {m} ...");
    let t0 = Instant::now();
    let graph = random_connected_graph(n, m, 2026);
    println!(
        "  built {} nodes / {} edges in {:.1?}",
        graph.node_count(),
        graph.edge_count(),
        t0.elapsed()
    );

    // pre-layout bandwidth for the comparison below (the runner builds its
    // own renumbered CSR; no second RCM pass is run for the stat)
    let before = mean_bandwidth(&CsrTopology::build(&graph));

    let program = MinIdFlood::new(0);
    let t0 = Instant::now();
    let mut runner = ParallelSyncRunner::with_layout(&program, graph, threads, LayoutPolicy::Rcm);
    println!(
        "  pool-backed runner ready ({} shards, {} threads, RCM layout) in {:.1?}",
        runner.shards().len(),
        threads,
        t0.elapsed()
    );
    let after = mean_bandwidth(runner.topology());
    println!(
        "  RCM layout: mean neighbour index distance {before:.0} -> {after:.0} ({:.1}x)",
        before / after.max(1.0),
    );

    // phase 1: flood to global acceptance
    let t0 = Instant::now();
    let rounds = runner
        .run_until_all_accept(10_000)
        .expect("the flood converges within the graph's diameter");
    let elapsed = t0.elapsed();
    println!(
        "converged in {rounds} rounds, {:.2?} ({:.1}M node-rounds/s)",
        elapsed,
        (n as f64 * rounds as f64) / elapsed.as_secs_f64() / 1e6
    );

    // phase 2: transient-fault burst, then watch the healing wave
    let faults = 10_000;
    let plan = FaultPlan::random(n, faults, 7);
    runner.apply_faults(&plan, |_v, state| *state = u64::MAX);
    println!("injected {faults} corrupted registers");
    let t0 = Instant::now();
    let heal = runner
        .run_until_all_accept(10_000)
        .expect("the flood re-stabilizes after transient faults");
    println!(
        "healed in {heal} rounds, {:.2?} — self-stabilization at n = 10^6",
        t0.elapsed()
    );

    // determinism spot check: a genuinely multi-threaded, RCM-renumbered
    // run reaches the same configuration as a 1-thread run without the
    // layout pass (forced to ≥ 4 threads so the check stays meaningful on
    // single-core hosts)
    let small_n = 50_000;
    let check_threads = threads.max(4);
    let g = random_connected_graph(small_n, 2 * small_n, 11);
    let mut a =
        ParallelSyncRunner::with_layout(&program, g.clone(), check_threads, LayoutPolicy::Rcm);
    let mut b = ParallelSyncRunner::new(&program, g, 1);
    a.run_rounds(10);
    b.run_rounds(10);
    assert_eq!(
        a.states_snapshot().as_slice(),
        b.states(),
        "thread count / layout must not change results"
    );
    println!(
        "determinism check passed: {check_threads}-thread RCM run == 1-thread run (n = {small_n})"
    );
}
