//! Million-node run on the sharded execution engine.
//!
//! Builds a ~10⁶-node random connected graph, floods the minimum identity
//! with [`MinIdFlood`] on the [`ParallelSyncRunner`] until every node
//! accepts, injects a burst of transient faults, and measures the healing
//! wave — printing per-round throughput along the way. A final spot check
//! re-runs a prefix on one thread and asserts bit-for-bit equality, the
//! engine's determinism contract.
//!
//! Run with: `cargo run --release --example million_nodes`
//! (release mode matters: this is a throughput demonstration).

use smst_engine::programs::MinIdFlood;
use smst_engine::{default_threads, ParallelSyncRunner};
use smst_graph::generators::random_connected_graph;
use smst_sim::FaultPlan;
use std::time::Instant;

fn main() {
    let n = 1_000_000;
    let m = 3 * n / 2;
    let threads = default_threads();
    println!("building a random connected graph: n = {n}, m ≈ {m} ...");
    let t0 = Instant::now();
    let graph = random_connected_graph(n, m, 2026);
    println!(
        "  built {} nodes / {} edges in {:.1?}",
        graph.node_count(),
        graph.edge_count(),
        t0.elapsed()
    );

    let program = MinIdFlood::new(0);
    let t0 = Instant::now();
    let mut runner = ParallelSyncRunner::new(&program, graph, threads);
    println!(
        "  sharded runner ready ({} shards, {} threads) in {:.1?}",
        runner.shards().len(),
        threads,
        t0.elapsed()
    );

    // phase 1: flood to global acceptance
    let t0 = Instant::now();
    let rounds = runner
        .run_until_all_accept(10_000)
        .expect("the flood converges within the graph's diameter");
    let elapsed = t0.elapsed();
    println!(
        "converged in {rounds} rounds, {:.2?} ({:.1}M node-rounds/s)",
        elapsed,
        (n as f64 * rounds as f64) / elapsed.as_secs_f64() / 1e6
    );

    // phase 2: transient-fault burst, then watch the healing wave
    let faults = 10_000;
    let plan = FaultPlan::random(n, faults, 7);
    runner.apply_faults(&plan, |_v, state| *state = u64::MAX);
    println!("injected {faults} corrupted registers");
    let t0 = Instant::now();
    let heal = runner
        .run_until_all_accept(10_000)
        .expect("the flood re-stabilizes after transient faults");
    println!(
        "healed in {heal} rounds, {:.2?} — self-stabilization at n = 10^6",
        t0.elapsed()
    );

    // determinism spot check: a genuinely multi-threaded run reaches the
    // same configuration as a 1-thread run (forced to ≥ 4 threads so the
    // check stays meaningful on single-core hosts)
    let small_n = 50_000;
    let check_threads = threads.max(4);
    let g = random_connected_graph(small_n, 2 * small_n, 11);
    let mut a = ParallelSyncRunner::new(&program, g.clone(), check_threads);
    let mut b = ParallelSyncRunner::new(&program, g, 1);
    a.run_rounds(10);
    b.run_rounds(10);
    assert_eq!(
        a.states(),
        b.states(),
        "thread count must not change results"
    );
    println!(
        "determinism check passed: {check_threads}-thread run == 1-thread run (n = {small_n})"
    );
}
