//! Million-node run on the sharded execution engine, driven through the
//! **one engine API**: an [`EngineConfig`] envelope builds the runner
//! (the typed [`ParallelSyncRunner::from_config`] here, so the renumbered
//! topology stays inspectable; the type-erased
//! [`EngineConfig::instantiate`] in the determinism check), a
//! [`RecordingObserver`] reports per-round alarm counts and phase
//! timings, and the final spot check runs the same prefix under two
//! differently-knobbed envelopes and asserts bit-for-bit equality — the
//! engine's determinism contract covers every knob.
//!
//! Builds a ~10⁶-node random connected graph, floods the minimum identity
//! with [`MinIdFlood`] until every node accepts, injects a burst of
//! transient faults, and measures the healing wave.
//!
//! Run with: `cargo run --release --example million_nodes`
//! (release mode matters: this is a throughput demonstration).
//! `SMST_BENCH_SMOKE=1` shrinks the run to CI smoke sizes.

use smst_engine::layout::mean_bandwidth;
use smst_engine::programs::MinIdFlood;
use smst_engine::{
    default_threads, CsrTopology, EngineConfig, LayoutPolicy, ParallelSyncRunner, StopCondition,
};
use smst_graph::generators::random_connected_graph;
use smst_sim::{FaultPlan, RecordingObserver};
use std::time::Instant;

fn smoke_mode() -> bool {
    std::env::var_os("SMST_BENCH_SMOKE").is_some_and(|v| v != "0")
}

fn main() {
    let (n, faults) = if smoke_mode() {
        (20_000usize, 500usize)
    } else {
        (1_000_000, 10_000)
    };
    let m = 3 * n / 2;
    let threads = default_threads();
    println!("building a random connected graph: n = {n}, m ≈ {m} ...");
    let t0 = Instant::now();
    let graph = random_connected_graph(n, m, 2026);
    println!(
        "  built {} nodes / {} edges in {:.1?}",
        graph.node_count(),
        graph.edge_count(),
        t0.elapsed()
    );

    // pre-layout bandwidth for the comparison below (the runner builds its
    // own renumbered CSR; no second RCM pass is run for the stat)
    let before = mean_bandwidth(&CsrTopology::build(&graph));

    // the typed EngineConfig constructor: same validated envelope as
    // `instantiate`, but the concrete runner stays visible so its
    // renumbered topology can be inspected
    let program = MinIdFlood::new(0);
    let engine = EngineConfig::new()
        .threads(threads)
        .layout(LayoutPolicy::Rcm);
    let t0 = Instant::now();
    let mut runner = ParallelSyncRunner::from_config(&program, graph, &engine)
        .expect("a sync sharded envelope is valid");
    println!(
        "  {} runner ready in {:.1?}",
        engine.describe(),
        t0.elapsed()
    );
    let after = mean_bandwidth(runner.topology());
    println!(
        "  RCM layout: mean neighbour index distance {before:.0} -> {after:.0} ({:.1}x)",
        before / after.max(1.0),
    );

    // phase 1: flood to global acceptance
    let t0 = Instant::now();
    let rounds = runner
        .run_until_all_accept(10_000)
        .expect("the flood converges within the graph's diameter");
    let elapsed = t0.elapsed();
    println!(
        "converged in {rounds} rounds, {:.2?} ({:.1}M node-rounds/s)",
        elapsed,
        (n as f64 * rounds as f64) / elapsed.as_secs_f64() / 1e6
    );

    // phase 2: transient-fault burst, then watch the healing wave — with a
    // RoundObserver recording per-round alarm counts and phase timings
    let plan = FaultPlan::random(n, faults, 7);
    runner.apply_faults(&plan, |_v, state| *state = u64::MAX);
    println!("injected {faults} corrupted registers");
    let recording = RecordingObserver::new();
    runner.set_observer(Box::new(recording.clone()));
    let t0 = Instant::now();
    let heal = runner
        .run_until_all_accept(10_000)
        .expect("the flood re-stabilizes after transient faults");
    println!(
        "healed in {heal} rounds, {:.2?} — self-stabilization at n = {n}",
        t0.elapsed()
    );
    println!(
        "  observed {} rounds, mean round {:.1} µs (mean compute {:.1} µs)",
        recording.rounds_observed(),
        recording.mean_round_ns() / 1e3,
        recording.mean_compute_ns() / 1e3,
    );

    // determinism spot check: a genuinely multi-threaded, RCM-renumbered,
    // halo-exchange run reaches the same configuration as a 1-thread run
    // without any layout — two envelopes, one result (forced to ≥ 4
    // threads so the check stays meaningful on single-core hosts)
    let small_n = if smoke_mode() { 5_000 } else { 50_000 };
    let check_threads = threads.max(4);
    let g = random_connected_graph(small_n, 2 * small_n, 11);
    let tuned = EngineConfig::new()
        .threads(check_threads)
        .layout(LayoutPolicy::Rcm)
        .halo(true);
    let mut a = tuned
        .instantiate(&program, g.clone())
        .expect("a tuned sync envelope is valid");
    let mut b = EngineConfig::new()
        .instantiate(&program, g)
        .expect("the plain envelope is valid");
    a.run_until(StopCondition::Steps, 10);
    b.run_until(StopCondition::Steps, 10);
    assert_eq!(
        a.states_snapshot(),
        b.states_snapshot(),
        "thread count / layout / halo must not change results"
    );
    println!(
        "determinism check passed: {} == {} (n = {small_n})",
        tuned.describe(),
        EngineConfig::new().describe()
    );
}
