//! Demo: hunt for adversarial schedules with the campaign engine, then
//! shrink the best find to a one-line reproduction.
//!
//! ```sh
//! cargo run --release --example adversary_campaign
//! ```
//!
//! The campaign searches daemon × fault × topology space on the monitor
//! flood workload (detection time = information-flow time from the fault
//! to the monitor node), scores every trial against its round-robin
//! baseline, and delta-debugs the best adversarial find down to a minimal
//! trial whose `TrialId` replays it exactly.

use smst_adversary::{
    beats_round_robin_memo, run_campaign, run_trial, shrink_trial, CampaignSpec, TrialSpec,
    Workload,
};
use smst_engine::GraphFamily;

fn main() {
    // SMST_BENCH_SMOKE=1 shrinks the search so CI can run the example
    let smoke = std::env::var_os("SMST_BENCH_SMOKE").is_some_and(|v| v != "0");
    let mut spec = CampaignSpec::new("example", Workload::Monitor);
    spec.families = vec![
        GraphFamily::Path { n: 64 },
        GraphFamily::Caterpillar { spine: 16, legs: 2 },
        GraphFamily::RandomConnected { n: 64, m: 96 },
    ];
    spec.graph_seeds = vec![1, 2, 3];
    spec.random_trials = if smoke { 12 } else { 32 };
    spec.guided_rounds = if smoke { 1 } else { 2 };
    spec.budget = 320;
    spec.seed = 11;
    spec.threads = smst_engine::default_threads();

    let report = run_campaign(&spec);
    println!(
        "\n{} trials ({} random + {} guided), top finds by regret:",
        report.records.len(),
        report.random_trials,
        report.guided_trials
    );
    println!(
        "{:<18} {:>7} {:>10} {:>10}   id",
        "daemon", "regret", "score", "baseline"
    );
    for record in report.records.iter().take(8) {
        println!(
            "{:<18} {:>+7} {:>10} {:>10}   {}",
            record.daemon,
            record.regret,
            record.outcome.score.value(spec.budget),
            record.baseline.score.value(spec.budget),
            record.id
        );
    }

    let find = report
        .records
        .iter()
        .find(|r| {
            r.spec.daemon.is_adversarial_batch() && r.regret > 0 && !r.outcome.score.is_missed()
        })
        .expect("some adversarial batch daemon should beat round-robin");
    println!(
        "\nbest adversarial-batch find: {} (detection {} vs round-robin {})",
        find.daemon,
        find.outcome.score.value(spec.budget),
        find.baseline.score.value(spec.budget)
    );

    let shrunk = shrink_trial(&find.spec, beats_round_robin_memo());
    println!(
        "shrunk: {} nodes, {} fault(s), budget {} ({} moves accepted, {} trials evaluated)",
        shrunk.spec.family.node_count(),
        shrunk.spec.fault_count,
        shrunk.spec.budget,
        shrunk.accepted,
        shrunk.evaluated
    );
    println!("replay with TrialId:\n  {}", shrunk.spec.id());

    let replayed = run_trial(&TrialSpec::from_id(&shrunk.spec.id()).expect("ids parse"));
    assert_eq!(
        replayed,
        run_trial(&shrunk.spec),
        "replay must be identical"
    );
    println!(
        "replayed: detection {:?} on {} nodes — identical ✓",
        replayed.detection, replayed.node_count
    );
}
