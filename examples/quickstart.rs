//! Quickstart: construct the MST of a random network with SYNC_MST, assign
//! the O(log n)-bit proof labels, and run the self-stabilizing verifier until
//! every node accepts.
//!
//! Run with: `cargo run --example quickstart`

use smst_core::MstVerificationScheme;
use smst_graph::generators::random_connected_graph;
use smst_graph::mst::kruskal;
use smst_graph::NodeId;
use smst_labeling::Instance;
use smst_sim::SyncRunner;

fn main() {
    let n = 24;
    let graph = random_connected_graph(n, 3 * n, 2026);
    println!("network: {graph}");

    // centralized ground truth and the distributed candidate representation
    let mst = kruskal(&graph);
    println!("MST total weight: {}", mst.total_weight());
    let tree = mst.rooted_at(&graph, NodeId(0)).expect("connected graph");
    let instance = Instance::from_tree(graph, &tree);

    // the marker assigns the O(log n)-bit labels in O(n) time
    let scheme = MstVerificationScheme::new();
    let (labels, report) = scheme.mark(&instance).expect("the candidate is an MST");
    println!(
        "marker: hierarchy height {}, construction {} rounds, marker {} rounds",
        report.hierarchy_height, report.construction_rounds, report.marker_rounds
    );

    // the verifier runs forever; on a correct instance no node ever rejects
    let verifier = scheme.verifier(&instance, labels);
    let budget = MstVerificationScheme::sync_budget(n);
    let mut runner = SyncRunner::new(&verifier, verifier.network());
    runner.run_rounds(budget);
    let alarms = runner.network().alarming_nodes(&verifier);
    println!(
        "after {} synchronous rounds: {} alarms (expected 0), all accept = {}",
        runner.rounds(),
        alarms.len(),
        runner.network().all_accept(&verifier)
    );
    let bits = runner.network().memory_bits(&verifier);
    println!(
        "per-node memory: max {} bits (≈ {:.1} words of log n)",
        bits.iter().max().unwrap(),
        *bits.iter().max().unwrap() as f64 / (n as f64).log2()
    );
}
