//! Self-stabilizing MST construction: start every node from garbage and let
//! the transformer (construction + verification + reset) converge to the MST,
//! comparing the three Table-1 variants.
//!
//! Run with: `cargo run --example self_stabilizing_network`

use smst_graph::generators::random_connected_graph;
use smst_selfstab::{SelfStabilizingMst, Variant};

fn main() {
    let n = 48;
    let graph = random_connected_graph(n, 3 * n, 99);
    println!("network: {graph}\n");
    println!(
        "{:<38} {:>14} {:>14} {:>16} {:>14}",
        "variant", "detect rounds", "build rounds", "total rounds", "bits / node"
    );
    for variant in Variant::all() {
        let outcome = SelfStabilizingMst::new(variant).stabilize_from_garbage(&graph, 4);
        assert!(outcome.output_correct);
        println!(
            "{:<38} {:>14} {:>14} {:>16} {:>14}",
            variant.name(),
            outcome.detection_rounds,
            outcome.construction_rounds + outcome.reset_rounds,
            outcome.total_rounds(),
            outcome.memory_bits_per_node
        );
    }
    println!("\nall variants converged to the unique MST");
}
