//! Fault detection: corrupt the proof at a few nodes of a correctly labelled
//! MST and watch how quickly — and how close to the faults — the verifier
//! raises alarms (properties (1) and (2) of the paper's abstract).
//!
//! Run with: `cargo run --example fault_detection`

use smst_core::faults::FaultKind;
use smst_core::scheme::run_sync_fault_experiment;
use smst_graph::generators::random_connected_graph;
use smst_graph::mst::kruskal;
use smst_graph::NodeId;
use smst_labeling::Instance;
use smst_sim::FaultPlan;

fn main() {
    let n = 32;
    let graph = random_connected_graph(n, 3 * n, 7);
    let tree = kruskal(&graph)
        .rooted_at(&graph, NodeId(0))
        .expect("connected");
    let instance = Instance::from_tree(graph, &tree);

    for (f, kind) in [
        (1usize, FaultKind::SpDistance),
        (2, FaultKind::StoredPieceWeight),
        (4, FaultKind::RootsString),
    ] {
        let plan = FaultPlan::random(n, f, 1000 + f as u64);
        let outcome = run_sync_fault_experiment(&instance, &plan, kind, 5);
        println!(
            "{f} fault(s) of kind {kind:?}: detected = {}, detection time = {:?} rounds, \
             max distance fault→alarm = {} hops",
            outcome.report.detected,
            outcome.report.detection_time,
            outcome.report.max_detection_distance
        );
    }
}
